module Vec = Tiles_util.Vec
module Intmat = Tiles_linalg.Intmat

type t = { dim : int; vecs : Vec.t list }

let of_vectors vecs =
  match vecs with
  | [] -> invalid_arg "Dependence.of_vectors: empty"
  | first :: _ ->
    let dim = Vec.dim first in
    if List.exists (fun v -> Vec.dim v <> dim) vecs then
      invalid_arg "Dependence.of_vectors: mixed dimensions";
    if List.exists Vec.is_zero vecs then
      invalid_arg "Dependence.of_vectors: zero dependence";
    { dim; vecs = List.sort_uniq Vec.compare_lex vecs }

let of_matrix m =
  of_vectors (List.init (Intmat.cols m) (fun j -> Intmat.col m j))

let to_matrix d = Intmat.of_cols (List.map Vec.to_list d.vecs)
let vectors d = d.vecs
let dim d = d.dim
let count d = List.length d.vecs
let all_lex_positive d = List.for_all Vec.is_lex_positive d.vecs

let all_nonnegative d =
  List.for_all (fun v -> Array.for_all (fun x -> x >= 0) v) d.vecs

let transform t d = of_vectors (List.map (Intmat.apply t) d.vecs)

let max_component d k =
  List.fold_left (fun acc v -> max acc v.(k)) min_int d.vecs

let pp ppf d =
  Format.fprintf ppf "{%s}"
    (String.concat "; " (List.map Vec.to_string d.vecs))
