type t = int array

let make n x = Array.make n x
let dim = Array.length
let zero n = Array.make n 0

let basis n k =
  if k < 0 || k >= n then invalid_arg "Vec.basis";
  let v = Array.make n 0 in
  v.(k) <- 1;
  v

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.map2";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( + ) a b
let sub a b = map2 ( - ) a b
let neg a = Array.map (fun x -> -x) a
let scale s a = Array.map (fun x -> s * x) a

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.dot";
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * b.(i))) a;
  !acc

let equal a b = a = b

let compare_lex a b =
  if Array.length a <> Array.length b then invalid_arg "Vec.compare_lex";
  let rec go i =
    if i = Array.length a then 0
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let is_zero a = Array.for_all (fun x -> x = 0) a

let is_lex_positive a =
  let rec go i =
    if i = Array.length a then false
    else if a.(i) > 0 then true
    else if a.(i) < 0 then false
    else go (i + 1)
  in
  go 0

let sum a = Array.fold_left ( + ) 0 a
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list

let pp ppf v =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (List.map string_of_int (to_list v)))

let to_string v = Format.asprintf "%a" pp v

let insert v k x =
  let n = Array.length v in
  if k < 0 || k > n then invalid_arg "Vec.insert";
  Array.init (n + 1) (fun i ->
      if i < k then v.(i) else if i = k then x else v.(i - 1))

let remove v k =
  let n = Array.length v in
  if k < 0 || k >= n then invalid_arg "Vec.remove";
  Array.init (n - 1) (fun i -> if i < k then v.(i) else v.(i + 1))

let permute_to_last v k =
  let n = Array.length v in
  if k < 0 || k >= n then invalid_arg "Vec.permute_to_last";
  Array.init n (fun i ->
      if i < k then v.(i) else if i = n - 1 then v.(k) else v.(i + 1))
