lib/util/heap.mli:
