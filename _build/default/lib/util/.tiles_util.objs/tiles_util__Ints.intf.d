lib/util/ints.mli:
