lib/util/table.mli:
