(** Integer helpers used throughout the tiling framework.

    All division here is {e floor} division (rounding towards negative
    infinity), which is what the lattice / LDS addressing arithmetic of the
    paper requires; OCaml's built-in [/] truncates towards zero and is wrong
    for negative operands. *)

val fdiv : int -> int -> int
(** [fdiv a b] is the floor of the rational [a/b]. [b] must be non-zero;
    raises [Invalid_argument] otherwise. *)

val fmod : int -> int -> int
(** [fmod a b] is [a - b * fdiv a b]; the result has the sign of [b]
    (non-negative for positive [b]). *)

val cdiv : int -> int -> int
(** [cdiv a b] is the ceiling of the rational [a/b]. *)

val gcd : int -> int -> int
(** Greatest common divisor, always non-negative; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, always non-negative. *)

val mul_exn : int -> int -> int
(** Overflow-checked multiplication. Raises [Overflow] if the product does
    not fit a native int. *)

val add_exn : int -> int -> int
(** Overflow-checked addition. Raises [Overflow] on overflow. *)

exception Overflow

val pow : int -> int -> int
(** [pow b e] is [b{^e}] for [e >= 0], overflow-checked. *)

val divisors : int -> int list
(** All positive divisors of [n > 0] in increasing order. *)

val sign : int -> int
(** [-1], [0] or [1]. *)
