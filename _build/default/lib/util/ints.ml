exception Overflow

let fdiv a b =
  if b = 0 then invalid_arg "Ints.fdiv: division by zero";
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let fmod a b = a - (b * fdiv a b)

let cdiv a b = -fdiv (-a) b

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let add_exn a b =
  let s = a + b in
  (* overflow iff operands share a sign that the sum does not *)
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else s

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul_exn (a / gcd a b) b)

let pow b e =
  if e < 0 then invalid_arg "Ints.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul_exn acc b) (mul_exn b b) (e asr 1)
    else go acc (mul_exn b b) (e asr 1)
  in
  (* avoid squaring b one extra time past the last needed step *)
  if e = 0 then 1 else go 1 b e

let divisors n =
  if n <= 0 then invalid_arg "Ints.divisors: need n > 0";
  let rec go d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then
      let large = if d * d = n then large else (n / d) :: large in
      go (d + 1) (d :: small) large
    else go (d + 1) small large
  in
  go 1 [] []

let sign n = compare n 0
