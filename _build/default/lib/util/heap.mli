(** Imperative binary min-heap keyed by a float priority, used as the event
    queue of the discrete-event simulator. Ties are broken by insertion
    order (FIFO), which makes simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> priority:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option
