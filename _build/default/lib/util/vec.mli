(** Small dense integer vectors (iteration points, dependence vectors, tile
    coordinates). A vector is an [int array]; these helpers never mutate
    their arguments unless the name says so. *)

type t = int array

val make : int -> int -> t
val dim : t -> int
val zero : int -> t
val basis : int -> int -> t
(** [basis n k] is the [n]-dimensional unit vector along axis [k]
    (0-indexed). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val dot : t -> t -> int
val equal : t -> t -> bool
val compare_lex : t -> t -> int
(** Lexicographic order, first coordinate most significant. *)

val is_zero : t -> bool
val is_lex_positive : t -> bool
(** True iff the first non-zero coordinate is positive (and the vector is
    non-zero). *)

val map2 : (int -> int -> int) -> t -> t -> t
val sum : t -> int
val copy : t -> t
val of_list : int list -> t
val to_list : t -> int list
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val insert : t -> int -> int -> t
(** [insert v k x] returns a vector of dimension [dim v + 1] with [x]
    inserted at position [k]. *)

val remove : t -> int -> t
(** [remove v k] drops coordinate [k]. *)

val permute_to_last : t -> int -> t
(** [permute_to_last v k] moves coordinate [k] to the last position, keeping
    the relative order of the others. *)
