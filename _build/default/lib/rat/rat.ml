type t = { num : int; den : int }

exception Overflow

let mul_i a b = try Tiles_util.Ints.mul_exn a b with Tiles_util.Ints.Overflow -> raise Overflow
let add_i a b = try Tiles_util.Ints.add_exn a b with Tiles_util.Ints.Overflow -> raise Overflow

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = Tiles_util.Ints.gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den

let add a b = make (add_i (mul_i a.num b.den) (mul_i b.num a.den)) (mul_i a.den b.den)
let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (mul_i a.num b.num) (mul_i a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  (* cross-multiply; denominators are positive *)
  Stdlib.compare (mul_i a.num b.den) (mul_i b.num a.den)

let sign a = Stdlib.compare a.num 0
let is_integer a = a.den = 1
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let floor a = Tiles_util.Ints.fdiv a.num a.den
let ceil a = Tiles_util.Ints.cdiv a.num a.den
let to_float a = float_of_int a.num /. float_of_int a.den

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  a.num

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
