lib/rat/rat.mli: Format
