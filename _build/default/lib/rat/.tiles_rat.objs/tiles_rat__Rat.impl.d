lib/rat/rat.ml: Format Stdlib Tiles_util
