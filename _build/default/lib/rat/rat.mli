(** Exact rational arithmetic on native 63-bit integers.

    Values are kept normalised: positive denominator, numerator and
    denominator coprime. All operations are overflow-checked ([Overflow] is
    raised rather than silently wrapping); the magnitudes appearing in
    tiling matrices and Fourier–Motzkin systems for realistic loop nests are
    tiny, so native ints suffice (no [zarith] in the sealed environment). *)

type t = private { num : int; den : int }

exception Overflow
(** Raised when an intermediate product exceeds the native int range. *)

val make : int -> int -> t
(** [make num den] normalises the fraction [num/den]. Raises
    [Division_by_zero] if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val abs : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val sign : t -> int
val is_integer : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> int
val ceil : t -> int

val to_float : t -> float
val to_int_exn : t -> int
(** Raises [Invalid_argument] if the value is not an integer. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
