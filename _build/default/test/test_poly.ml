module Constr = Tiles_poly.Constr
module FM = Tiles_poly.Fourier_motzkin
module Polyhedron = Tiles_poly.Polyhedron
module Cone = Tiles_poly.Cone
module Intmat = Tiles_linalg.Intmat
module Vec = Tiles_util.Vec

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

(* ---------- Constr ---------- *)

let test_constr_normalise () =
  (* 2x >= 3  tightens to  x >= 2 *)
  let c = Constr.ge [| 2 |] 3 in
  Alcotest.(check int) "coeff" 1 (Constr.coeff c 0);
  Alcotest.(check int) "const" (-2) (Constr.const c);
  Alcotest.(check bool) "x=2 holds" true (Constr.holds c [| 2 |]);
  Alcotest.(check bool) "x=1 fails" false (Constr.holds c [| 1 |])

let test_constr_tautology () =
  Alcotest.(check bool) "0 >= -1" true (Constr.is_tautology (Constr.ge [| 0 |] (-1)));
  Alcotest.(check bool) "0 >= 1" true (Constr.is_contradiction (Constr.ge [| 0 |] 1))

let test_constr_le () =
  let c = Constr.le [| 1; 1 |] 5 in
  Alcotest.(check bool) "(2,3)" true (Constr.holds c [| 2; 3 |]);
  Alcotest.(check bool) "(3,3)" false (Constr.holds c [| 3; 3 |])

(* ---------- Fourier–Motzkin ---------- *)

let test_fm_triangle () =
  (* x >= 0, y >= 0, x + y <= 3: eliminating y gives 0 <= x <= 3 *)
  let cs = [ Constr.ge [| 1; 0 |] 0; Constr.ge [| 0; 1 |] 0; Constr.le [| 1; 1 |] 3 ] in
  let projected = FM.eliminate cs ~var:1 in
  let p1 = Polyhedron.make ~dim:2 projected in
  Alcotest.(check bool) "x=3 in" true (Polyhedron.member p1 [| 3; 0 |]);
  Alcotest.(check bool) "x=4 out" false (Polyhedron.member p1 [| 4; 0 |]);
  Alcotest.(check bool) "x=-1 out" false (Polyhedron.member p1 [| -1; 0 |])

let test_fm_bounds () =
  let cs = [ Constr.ge [| 1; 0 |] 0; Constr.ge [| 0; 1 |] 0; Constr.le [| 1; 1 |] 3 ] in
  let proj = FM.project cs ~dim:2 in
  (match FM.bounds proj ~var:0 ~prefix:[||] with
  | Some (lo, hi) ->
    Alcotest.(check int) "x lo" 0 lo;
    Alcotest.(check int) "x hi" 3 hi
  | None -> Alcotest.fail "x range empty");
  match FM.bounds proj ~var:1 ~prefix:[| 2 |] with
  | Some (lo, hi) ->
    Alcotest.(check int) "y lo" 0 lo;
    Alcotest.(check int) "y hi" 1 hi
  | None -> Alcotest.fail "y range empty"

let test_fm_unbounded () =
  let cs = [ Constr.ge [| 1 |] 0 ] in
  let proj = FM.project cs ~dim:1 in
  Alcotest.check_raises "unbounded above"
    (Failure "Fourier_motzkin.bounds: variable unbounded above") (fun () ->
      ignore (FM.bounds proj ~var:0 ~prefix:[||]))

(* ---------- Polyhedron ---------- *)

let test_box_count () =
  let p = Polyhedron.box [ (1, 3); (0, 2) ] in
  Alcotest.(check int) "count" 9 (Polyhedron.count_points p);
  Alcotest.(check bool) "member" true (Polyhedron.member p [| 2; 1 |]);
  Alcotest.(check bool) "not member" false (Polyhedron.member p [| 0; 0 |])

let test_simplex_count () =
  (* x,y,z >= 0, x+y+z <= 3: C(6,3) = 20 points *)
  let cs =
    [
      Constr.ge [| 1; 0; 0 |] 0;
      Constr.ge [| 0; 1; 0 |] 0;
      Constr.ge [| 0; 0; 1 |] 0;
      Constr.le [| 1; 1; 1 |] 3;
    ]
  in
  let p = Polyhedron.make ~dim:3 cs in
  Alcotest.(check int) "count" 20 (Polyhedron.count_points p)

let test_empty () =
  let p = Polyhedron.make ~dim:1 [ Constr.ge [| 1 |] 5; Constr.le [| 1 |] 3 ] in
  Alcotest.(check bool) "empty" true (Polyhedron.is_empty_rational p);
  Alcotest.(check int) "no points" 0 (Polyhedron.count_points p)

let test_bounding_box () =
  let cs = [ Constr.ge [| 1; 0 |] 0; Constr.ge [| 0; 1 |] 0; Constr.le [| 2; 1 |] 7 ] in
  let p = Polyhedron.make ~dim:2 cs in
  let bb = Polyhedron.bounding_box p in
  Alcotest.(check (pair int int)) "x" (0, 3) bb.(0);
  Alcotest.(check (pair int int)) "y" (0, 7) bb.(1)

let test_enumeration_matches_membership () =
  (* every enumerated point is a member, and enumeration finds all members
     of the bounding box *)
  let cs =
    [
      Constr.ge [| 1; 0 |] (-1);
      Constr.le [| 1; 0 |] 6;
      Constr.ge [| 1; 1 |] 2;
      Constr.le [| 1; 2 |] 8;
      Constr.ge [| 0; 1 |] (-5);
    ]
  in
  let p = Polyhedron.make ~dim:2 cs in
  let pts = Polyhedron.points p in
  List.iter
    (fun x -> Alcotest.(check bool) "member" true (Polyhedron.member p x))
    pts;
  let bb = Polyhedron.bounding_box p in
  let brute = ref 0 in
  for x = fst bb.(0) to snd bb.(0) do
    for y = fst bb.(1) to snd bb.(1) do
      if Polyhedron.member p [| x; y |] then incr brute
    done
  done;
  Alcotest.(check int) "counts agree" !brute (List.length pts)

let test_skew_transform () =
  let p = Polyhedron.box [ (0, 2); (0, 2) ] in
  let t = Intmat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  let q = Polyhedron.transform_unimodular t p in
  Alcotest.(check int) "same cardinality" (Polyhedron.count_points p)
    (Polyhedron.count_points q);
  Alcotest.(check bool) "image point" true (Polyhedron.member q [| 2; 4 |]);
  Alcotest.(check bool) "non-image" false (Polyhedron.member q [| 0; 3 |])

let prop_fm_soundness =
  (* points of the polyhedron project into the eliminated system *)
  QCheck.Test.make ~name:"FM projection soundness" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5)
           (pair (pair (int_range (-3) 3) (int_range (-3) 3)) (int_range (-5) 5)))
        (pair (int_range (-4) 4) (int_range (-4) 4)))
    (fun (rows, (x, y)) ->
      let cs =
        List.map (fun ((a, b), c) -> Constr.ge [| a; b |] c) rows
        @ [ Constr.ge [| 1; 0 |] (-10); Constr.le [| 1; 0 |] 10;
            Constr.ge [| 0; 1 |] (-10); Constr.le [| 0; 1 |] 10 ]
      in
      let point = [| x; y |] in
      let in_full = List.for_all (fun c -> Constr.holds c point) cs in
      if not in_full then QCheck.assume_fail ()
      else
        let elim = FM.eliminate cs ~var:1 in
        List.for_all (fun c -> Constr.holds c point) elim)

(* ---------- Cone ---------- *)

let test_first_orthant () =
  let c = Cone.of_constraints (Intmat.identity 3) in
  Alcotest.(check bool) "pointed" true (Cone.is_pointed c);
  let rays = Cone.extreme_rays c in
  Alcotest.(check int) "three rays" 3 (List.length rays);
  List.iter
    (fun r -> Alcotest.(check bool) "ray in cone" true (Cone.contains c r))
    rays;
  Alcotest.check vec "first ray" [| 0; 0; 1 |] (List.hd rays)

let test_tiling_cone_adi () =
  (* ADI deps: columns (1,0,0),(1,1,0),(1,0,1); the paper's cone matrix C
     rows are (1,-1,-1),(0,1,0),(0,0,1) *)
  let d = Intmat.of_cols [ [ 1; 0; 0 ]; [ 1; 1; 0 ]; [ 1; 0; 1 ] ] in
  let cone = Cone.tiling_cone d in
  Alcotest.(check bool) "pointed" true (Cone.is_pointed cone);
  let rays = Cone.extreme_rays cone in
  Alcotest.(check int) "three rays" 3 (List.length rays);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "ray %s present" (Vec.to_string expected))
        true
        (List.exists (Vec.equal expected) rays))
    [ [| 1; -1; -1 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] ]

let test_tiling_cone_membership () =
  let d = Intmat.of_cols [ [ 1; 0; 0 ]; [ 1; 1; 0 ]; [ 1; 0; 1 ] ] in
  let cone = Cone.tiling_cone d in
  (* rectangular rows are inside the cone, and e1 is interior? e1·d = 1,1,1 > 0 *)
  Alcotest.(check bool) "e1 in" true (Cone.contains cone [| 1; 0; 0 |]);
  Alcotest.(check bool) "e1 interior" true
    (Cone.contains_in_interior cone [| 1; 0; 0 |]);
  Alcotest.(check bool) "e2 on boundary" false
    (Cone.contains_in_interior cone [| 0; 1; 0 |]);
  Alcotest.(check bool) "-e1 out" false (Cone.contains cone [| -1; 0; 0 |])

let test_cone_not_pointed () =
  (* single constraint in 2D: half-plane, contains a line *)
  let c = Cone.of_constraints (Intmat.of_rows [ [ 1; 0 ] ]) in
  Alcotest.(check bool) "not pointed" false (Cone.is_pointed c)

let prop_rays_in_cone =
  QCheck.Test.make ~name:"extreme rays lie in the cone" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 3 6)
        (triple (int_range (-3) 3) (int_range (-3) 3) (int_range 0 3)))
    (fun rows ->
      let m = Intmat.of_rows (List.map (fun (a, b, c) -> [ a; b; c ]) rows) in
      let cone = Cone.of_constraints m in
      if not (Cone.is_pointed cone) then QCheck.assume_fail ()
      else
        let rays = Cone.extreme_rays cone in
        List.for_all (Cone.contains cone) rays)

(* ---------- Pspace ---------- *)

let test_pspace_instantiate_box () =
  let module Pspace = Tiles_poly.Pspace in
  let ps =
    Pspace.box ~params:[ "M"; "N" ]
      [ (([], 0), ([ ("M", 1) ], -1)); (([], 1), ([ ("N", 2) ], 0)) ]
  in
  (* 0 <= x0 <= M-1, 1 <= x1 <= 2N *)
  let p = Pspace.instantiate ps [ 4; 3 ] in
  Alcotest.(check int) "count" (4 * 6) (Polyhedron.count_points p);
  Alcotest.(check bool) "member" true (Polyhedron.member p [| 3; 6 |]);
  Alcotest.(check bool) "not member" false (Polyhedron.member p [| 4; 6 |])

let test_pspace_skew_matches_concrete () =
  let module Pspace = Tiles_poly.Pspace in
  let t = Intmat.of_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  let ps =
    Pspace.transform_unimodular t
      (Pspace.box ~params:[ "N" ]
         [ (([], 0), ([ ("N", 1) ], -1)); (([], 0), ([ ("N", 1) ], -1)) ])
  in
  let concrete =
    Polyhedron.transform_unimodular t (Polyhedron.box [ (0, 4); (0, 4) ])
  in
  let inst = Pspace.instantiate ps [ 5 ] in
  Alcotest.(check int) "same count" (Polyhedron.count_points concrete)
    (Polyhedron.count_points inst);
  List.iter
    (fun j ->
      Alcotest.(check bool) "same membership"
        (Polyhedron.member concrete (Array.of_list j))
        (Polyhedron.member inst (Array.of_list j)))
    [ [ 0; 0 ]; [ 4; 8 ]; [ 4; 3 ]; [ 2; 7 ]; [ 5; 5 ] ]

let test_pspace_var_bounds () =
  let module Pspace = Tiles_poly.Pspace in
  let ps =
    Pspace.box ~params:[ "N" ]
      [ (([], 0), ([ ("N", 1) ], -1)); (([], 0), ([ ("N", 3) ], 2)) ]
  in
  (* bounds of var 1 in terms of N only *)
  let cs = Pspace.var_bounds_system ps ~var:1 in
  List.iter
    (fun c ->
      Alcotest.(check int) "no var0 coefficient" 0 (Constr.coeff c 1))
    cs

let test_pspace_duplicate_param () =
  Alcotest.check_raises "dup" (Invalid_argument "Pspace.make: duplicate parameter")
    (fun () ->
      ignore (Tiles_poly.Pspace.make ~params:[ "N"; "N" ] ~dim:1 []))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_poly"
    [
      ( "constr",
        [
          Alcotest.test_case "normalise" `Quick test_constr_normalise;
          Alcotest.test_case "tautology" `Quick test_constr_tautology;
          Alcotest.test_case "le" `Quick test_constr_le;
        ] );
      ( "fourier-motzkin",
        [
          Alcotest.test_case "triangle" `Quick test_fm_triangle;
          Alcotest.test_case "bounds" `Quick test_fm_bounds;
          Alcotest.test_case "unbounded" `Quick test_fm_unbounded;
          q prop_fm_soundness;
        ] );
      ( "polyhedron",
        [
          Alcotest.test_case "box count" `Quick test_box_count;
          Alcotest.test_case "simplex count" `Quick test_simplex_count;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "bounding box" `Quick test_bounding_box;
          Alcotest.test_case "enumeration vs membership" `Quick
            test_enumeration_matches_membership;
          Alcotest.test_case "skew transform" `Quick test_skew_transform;
        ] );
      ( "pspace",
        [
          Alcotest.test_case "instantiate box" `Quick test_pspace_instantiate_box;
          Alcotest.test_case "skew matches concrete" `Quick test_pspace_skew_matches_concrete;
          Alcotest.test_case "var bounds" `Quick test_pspace_var_bounds;
          Alcotest.test_case "duplicate param" `Quick test_pspace_duplicate_param;
        ] );
      ( "cone",
        [
          Alcotest.test_case "first orthant" `Quick test_first_orthant;
          Alcotest.test_case "ADI tiling cone" `Quick test_tiling_cone_adi;
          Alcotest.test_case "membership" `Quick test_tiling_cone_membership;
          Alcotest.test_case "not pointed" `Quick test_cone_not_pointed;
          q prop_rays_in_cone;
        ] );
    ]
