module Intmat = Tiles_linalg.Intmat
module Ratmat = Tiles_linalg.Ratmat
module Hnf = Tiles_linalg.Hnf
module Snf = Tiles_linalg.Snf
module Lattice = Tiles_linalg.Lattice
module Rat = Tiles_rat.Rat
module Vec = Tiles_util.Vec

let imat = Alcotest.testable (Fmt.of_to_string Intmat.to_string) Intmat.equal
let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

(* ---------- Intmat ---------- *)

let test_mul_identity () =
  let a = Intmat.of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check imat "a*I = a" a (Intmat.mul a (Intmat.identity 2));
  Alcotest.check imat "I*a = a" a (Intmat.mul (Intmat.identity 2) a)

let test_apply () =
  let a = Intmat.of_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check vec "apply" [| 5; 11 |] (Intmat.apply a [| 1; 2 |])

let test_transpose () =
  let a = Intmat.of_rows [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  Alcotest.check imat "transpose"
    (Intmat.of_rows [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ])
    (Intmat.transpose a);
  Alcotest.check imat "of_cols = transpose of_rows"
    (Intmat.transpose a)
    (Intmat.of_cols [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ])

let test_det () =
  Alcotest.(check int) "det 2x2" (-2)
    (Intmat.det (Intmat.of_rows [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "det singular" 0
    (Intmat.det (Intmat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "det needs pivot swap" (-1)
    (Intmat.det (Intmat.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]));
  Alcotest.(check int) "det 3x3" 30
    (Intmat.det (Intmat.of_rows [ [ 2; 0; 0 ]; [ 1; 3; 0 ]; [ 7; 2; 5 ] ]));
  Alcotest.(check int) "det id(4)" 1 (Intmat.det (Intmat.identity 4))

let test_det_skew_sor () =
  (* the paper's SOR skew matrix is unimodular *)
  let t = Intmat.of_rows [ [ 1; 0; 0 ]; [ 1; 1; 0 ]; [ 2; 0; 1 ] ] in
  Alcotest.(check bool) "unimodular" true (Intmat.is_unimodular t)

(* ---------- Ratmat ---------- *)

let test_rat_inverse () =
  let a = Ratmat.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  let inv = Ratmat.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Ratmat.equal (Ratmat.mul a inv) (Ratmat.identity 2))

let test_rat_inverse_singular () =
  let a = Ratmat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ] in
  Alcotest.check_raises "singular" (Failure "Ratmat.inverse: singular matrix")
    (fun () -> ignore (Ratmat.inverse a))

let test_rat_det () =
  let a = Ratmat.of_rows [ [ Rat.make 1 2; Rat.zero ]; [ Rat.zero; Rat.make 1 3 ] ] in
  Alcotest.(check bool) "det diag" true (Rat.equal (Ratmat.det a) (Rat.make 1 6))

let test_row_denominator_lcm () =
  let a =
    Ratmat.of_rows [ [ Rat.make 1 4; Rat.make (-1) 6 ]; [ Rat.one; Rat.zero ] ]
  in
  Alcotest.(check int) "lcm row 0" 12 (Ratmat.row_denominator_lcm a 0);
  Alcotest.(check int) "lcm row 1" 1 (Ratmat.row_denominator_lcm a 1)

(* ---------- HNF ---------- *)

let random_nonsingular_gen n =
  QCheck.Gen.(
    let entry = int_range (-5) 5 in
    let rec go () =
      let* rows = list_repeat n (list_repeat n entry) in
      let m = Intmat.of_rows rows in
      if Intmat.det m <> 0 then return m else go ()
    in
    go ())

let arb_mat n =
  QCheck.make ~print:Intmat.to_string (random_nonsingular_gen n)

let check_hnf_of a =
  let { Hnf.h; u } = Hnf.compute a in
  Alcotest.(check bool) "u unimodular" true (Intmat.is_unimodular u);
  Alcotest.check imat "a*u = h" h (Intmat.mul a u);
  Alcotest.(check bool) "is_hnf" true (Hnf.is_hnf h)

let test_hnf_examples () =
  check_hnf_of (Intmat.of_rows [ [ 2; -1; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]);
  check_hnf_of (Intmat.of_rows [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ -1; 0; 1 ] ]);
  check_hnf_of (Intmat.of_rows [ [ 3; 5 ]; [ 7; 2 ] ]);
  check_hnf_of (Intmat.identity 3)

let test_hnf_jacobi () =
  (* the paper's Jacobi H' = [[2,-1,0];[0,1,0];[0,0,1]] has HNF with
     strides (1,2,1) and offset a_21 = 1 *)
  let a = Intmat.of_rows [ [ 2; -1; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ] in
  let { Hnf.h; _ } = Hnf.compute a in
  Alcotest.(check int) "c1" 1 h.(0).(0);
  Alcotest.(check int) "c2" 2 h.(1).(1);
  Alcotest.(check int) "c3" 1 h.(2).(2);
  Alcotest.(check int) "a21" 1 h.(1).(0)

let test_hnf_singular () =
  Alcotest.check_raises "singular" (Invalid_argument "Hnf.compute: singular matrix")
    (fun () -> ignore (Hnf.compute (Intmat.of_rows [ [ 1; 1 ]; [ 1; 1 ] ])))

let prop_hnf n =
  QCheck.Test.make
    ~name:(Printf.sprintf "HNF properties (n=%d)" n)
    ~count:200 (arb_mat n)
    (fun a ->
      let { Hnf.h; u } = Hnf.compute a in
      Intmat.is_unimodular u
      && Intmat.equal (Intmat.mul a u) h
      && Hnf.is_hnf h
      && abs (Intmat.det a) = Intmat.det h)

(* ---------- SNF ---------- *)

let check_snf_of a =
  let { Snf.u; v; s; diag } = Snf.compute a in
  Alcotest.(check bool) "u unimodular" true (Intmat.is_unimodular u);
  Alcotest.(check bool) "v unimodular" true (Intmat.is_unimodular v);
  Alcotest.check imat "u*a*v = s" s (Intmat.mul (Intmat.mul u a) v);
  let rec divides = function
    | a :: (b :: _ as rest) ->
      (a = 0 || (b = 0 && true) || (a <> 0 && b mod a = 0)) && divides rest
    | _ -> true
  in
  Alcotest.(check bool) "divisibility chain" true (divides diag)

let test_snf_examples () =
  check_snf_of (Intmat.of_rows [ [ 2; 4 ]; [ 6; 8 ] ]);
  check_snf_of (Intmat.of_rows [ [ 1; 2 ]; [ 2; 4 ] ]);
  check_snf_of (Intmat.identity 3);
  check_snf_of (Intmat.of_rows [ [ 0; 0 ]; [ 0; 0 ] ])

let prop_snf n =
  QCheck.Test.make
    ~name:(Printf.sprintf "SNF properties (n=%d)" n)
    ~count:100
    (QCheck.make ~print:Intmat.to_string
       QCheck.Gen.(
         let entry = int_range (-5) 5 in
         map Intmat.of_rows (list_repeat n (list_repeat n entry))))
    (fun a ->
      let { Snf.u; v; s; diag } = Snf.compute a in
      Intmat.is_unimodular u && Intmat.is_unimodular v
      && Intmat.equal (Intmat.mul (Intmat.mul u a) v) s
      && abs (Intmat.det a)
         = abs (List.fold_left (fun acc d -> acc * d) 1 diag))

(* ---------- Lattice ---------- *)

let test_lattice_membership () =
  let l = Lattice.of_basis (Intmat.of_rows [ [ 2; -1; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]) in
  Alcotest.(check int) "index" 2 (Lattice.index l);
  Alcotest.(check bool) "origin" true (Lattice.member l [| 0; 0; 0 |]);
  (* H'(1,0,0)ᵀ = (2,0,0) *)
  Alcotest.(check bool) "(2,0,0)" true (Lattice.member l [| 2; 0; 0 |]);
  Alcotest.(check bool) "(1,1,0)" true (Lattice.member l [| 1; 1; 0 |]);
  Alcotest.(check bool) "(1,0,0) not member" false (Lattice.member l [| 1; 0; 0 |])

let test_lattice_coords_roundtrip () =
  let g = Intmat.of_rows [ [ 3; 0 ]; [ 1; 2 ] ] in
  let l = Lattice.of_basis g in
  let v = Lattice.point_of_coords l [| 2; -3 |] in
  match Lattice.coords l v with
  | None -> Alcotest.fail "coords of lattice point"
  | Some t -> Alcotest.check vec "roundtrip" v (Lattice.point_of_coords l t)

let test_first_in_residue () =
  (* basis [[1,0];[1,2]]: points (a, a+2b); given x0 = 3 the admissible x1
     are 3 + 2Z, so the least non-negative is 1 *)
  let l = Lattice.of_basis (Intmat.of_rows [ [ 1; 0 ]; [ 1; 2 ] ]) in
  Alcotest.(check int) "residue" 1 (Lattice.first_in_residue l 1 [| 3 |]);
  Alcotest.(check int) "residue even" 0 (Lattice.first_in_residue l 1 [| 2 |]);
  Alcotest.(check int) "dim0" 0 (Lattice.first_in_residue l 0 [||])

let prop_lattice_roundtrip n =
  QCheck.Test.make
    ~name:(Printf.sprintf "lattice coords roundtrip (n=%d)" n)
    ~count:200
    (QCheck.pair (arb_mat n)
       (QCheck.make
          QCheck.Gen.(array_size (return n) (int_range (-10) 10))))
    (fun (g, t) ->
      let l = Lattice.of_basis g in
      let v = Lattice.point_of_coords l t in
      match Lattice.coords l v with
      | None -> false
      | Some t' -> Vec.equal (Lattice.point_of_coords l t') v)

let prop_lattice_nonmember n =
  QCheck.Test.make
    ~name:(Printf.sprintf "coords exact membership (n=%d)" n)
    ~count:200
    (QCheck.pair (arb_mat n)
       (QCheck.make
          QCheck.Gen.(array_size (return n) (int_range (-20) 20))))
    (fun (g, v) ->
      let l = Lattice.of_basis g in
      match Lattice.coords l v with
      | Some t -> Vec.equal (Lattice.point_of_coords l t) v
      | None ->
        (* verify by brute force with rational solve: v = g·x must have a
           non-integer component *)
        let gi = Ratmat.inverse (Ratmat.of_intmat (Lattice.hnf_basis l)) in
        let x = Ratmat.apply_int gi v in
        not (Array.for_all Rat.is_integer x))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_linalg"
    [
      ( "intmat",
        [
          Alcotest.test_case "mul identity" `Quick test_mul_identity;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "det" `Quick test_det;
          Alcotest.test_case "SOR skew unimodular" `Quick test_det_skew_sor;
        ] );
      ( "ratmat",
        [
          Alcotest.test_case "inverse" `Quick test_rat_inverse;
          Alcotest.test_case "inverse singular" `Quick test_rat_inverse_singular;
          Alcotest.test_case "det" `Quick test_rat_det;
          Alcotest.test_case "row denominator lcm" `Quick test_row_denominator_lcm;
        ] );
      ( "hnf",
        [
          Alcotest.test_case "examples" `Quick test_hnf_examples;
          Alcotest.test_case "jacobi strides" `Quick test_hnf_jacobi;
          Alcotest.test_case "singular" `Quick test_hnf_singular;
          q (prop_hnf 2);
          q (prop_hnf 3);
          q (prop_hnf 4);
        ] );
      ( "snf",
        [
          Alcotest.test_case "examples" `Quick test_snf_examples;
          q (prop_snf 2);
          q (prop_snf 3);
        ] );
      ( "lattice",
        [
          Alcotest.test_case "membership" `Quick test_lattice_membership;
          Alcotest.test_case "coords roundtrip" `Quick test_lattice_coords_roundtrip;
          Alcotest.test_case "first_in_residue" `Quick test_first_in_residue;
          q (prop_lattice_roundtrip 2);
          q (prop_lattice_roundtrip 3);
          q (prop_lattice_nonmember 3);
        ] );
    ]
