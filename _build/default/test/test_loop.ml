module Dependence = Tiles_loop.Dependence
module Nest = Tiles_loop.Nest
module Skew = Tiles_loop.Skew
module Polyhedron = Tiles_poly.Polyhedron
module Cone = Tiles_poly.Cone
module Intmat = Tiles_linalg.Intmat
module Vec = Tiles_util.Vec

(* the original (unskewed) SOR dependencies *)
let sor_deps =
  Dependence.of_vectors
    [ [| 0; 1; 0 |]; [| 0; 0; 1 |]; [| 1; -1; 0 |]; [| 1; 0; -1 |]; [| 1; 0; 0 |] ]

let jacobi_deps =
  Dependence.of_vectors
    [ [| 1; 0; 0 |]; [| 1; 1; 0 |]; [| 1; -1; 0 |]; [| 1; 0; 1 |]; [| 1; 0; -1 |] ]

let adi_deps =
  Dependence.of_vectors [ [| 1; 0; 0 |]; [| 1; 1; 0 |]; [| 1; 0; 1 |] ]

let test_dependence_basics () =
  Alcotest.(check int) "sor count" 5 (Dependence.count sor_deps);
  Alcotest.(check int) "dim" 3 (Dependence.dim sor_deps);
  Alcotest.(check bool) "lex positive" true (Dependence.all_lex_positive sor_deps);
  Alcotest.(check bool) "sor not nonneg" false (Dependence.all_nonnegative sor_deps);
  Alcotest.(check bool) "adi nonneg" true (Dependence.all_nonnegative adi_deps);
  Alcotest.(check int) "max comp 0" 1 (Dependence.max_component sor_deps 0)

let test_dependence_invalid () =
  Alcotest.check_raises "zero dep"
    (Invalid_argument "Dependence.of_vectors: zero dependence") (fun () ->
      ignore (Dependence.of_vectors [ [| 0; 0 |] ]));
  Alcotest.check_raises "empty"
    (Invalid_argument "Dependence.of_vectors: empty") (fun () ->
      ignore (Dependence.of_vectors []))

let test_dependence_matrix_roundtrip () =
  let m = Dependence.to_matrix adi_deps in
  Alcotest.(check int) "cols" 3 (Intmat.cols m);
  let d2 = Dependence.of_matrix m in
  Alcotest.(check int) "same count" (Dependence.count adi_deps)
    (Dependence.count d2)

let test_nest_legality () =
  let space = Polyhedron.box [ (1, 4); (1, 4); (1, 4) ] in
  let nest = Nest.make ~name:"adi" ~space ~deps:adi_deps in
  Alcotest.(check bool) "no skew needed" false (Nest.needs_skewing nest);
  let nest_sor = Nest.make ~name:"sor" ~space ~deps:sor_deps in
  Alcotest.(check bool) "sor needs skew" true (Nest.needs_skewing nest_sor)

let test_nest_rejects_illegal () =
  let space = Polyhedron.box [ (1, 4); (1, 4) ] in
  let deps = Dependence.of_vectors [ [| 1; 0 |]; [| -1; 1 |] ] in
  Alcotest.check_raises "lex negative"
    (Invalid_argument "Nest.make: dependence not lexicographically positive")
    (fun () -> ignore (Nest.make ~name:"bad" ~space ~deps))

let test_paper_sor_skew () =
  (* the paper's T = [[1,0,0];[1,1,0];[2,0,1]] makes skewed SOR deps the
     columns {(1,1,2),(0,1,0),(1,0,2),(1,1,1),(0,0,1)} *)
  let t = Skew.of_factors 3 [ (1, 0, 1); (2, 0, 2) ] in
  Alcotest.(check bool) "valid skew" true (Skew.is_valid_skew t);
  let skewed = Dependence.transform t sor_deps in
  Alcotest.(check bool) "nonneg after skew" true
    (Dependence.all_nonnegative skewed);
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "dep %s" (Vec.to_string expected))
        true
        (List.exists (Vec.equal expected) (Dependence.vectors skewed)))
    [ [| 1; 1; 2 |]; [| 0; 1; 0 |]; [| 1; 0; 2 |]; [| 1; 1; 1 |]; [| 0; 0; 1 |] ]

let test_paper_jacobi_skew () =
  let t = Skew.of_factors 3 [ (1, 0, 1); (2, 0, 1) ] in
  let skewed = Dependence.transform t jacobi_deps in
  Alcotest.(check bool) "nonneg after skew" true
    (Dependence.all_nonnegative skewed)

let test_suggest_skew () =
  match Skew.suggest sor_deps with
  | None -> Alcotest.fail "suggest failed for SOR"
  | Some t ->
    Alcotest.(check bool) "valid" true (Skew.is_valid_skew t);
    let skewed = Dependence.transform t sor_deps in
    Alcotest.(check bool) "nonneg" true (Dependence.all_nonnegative skewed)

let test_suggest_skew_impossible () =
  (* dependence with zero first component and a negative entry cannot be
     fixed by a first-column skew *)
  let deps = Dependence.of_vectors [ [| 0; 1; -1 |]; [| 1; 0; 0 |] ] in
  Alcotest.(check bool) "no skew" true (Skew.suggest deps = None)

let test_skew_apply_preserves_points () =
  let space = Polyhedron.box [ (1, 3); (1, 5); (1, 4) ] in
  let nest = Nest.make ~name:"sor" ~space ~deps:sor_deps in
  let t = Skew.of_factors 3 [ (1, 0, 1); (2, 0, 2) ] in
  let skewed = Skew.apply nest t in
  Alcotest.(check int) "same cardinality"
    (Polyhedron.count_points space)
    (Polyhedron.count_points skewed.Nest.space)

let test_tiling_cone_of_nest () =
  let space = Polyhedron.box [ (1, 4); (1, 4); (1, 4) ] in
  let nest = Nest.make ~name:"adi" ~space ~deps:adi_deps in
  let cone = Nest.tiling_cone nest in
  Alcotest.(check bool) "rect row 1 inside" true (Cone.contains cone [| 1; 0; 0 |]);
  Alcotest.(check bool) "cone ray inside" true
    (Cone.contains cone [| 1; -1; -1 |])

let prop_suggested_skew_works =
  (* random lexicographically-positive deps with positive first component:
     suggest must always succeed and fix them *)
  QCheck.Test.make ~name:"suggested skew fixes deps" ~count:300
    QCheck.(
      list_of_size (Gen.int_range 1 5)
        (triple (int_range 1 3) (int_range (-3) 3) (int_range (-3) 3)))
    (fun rows ->
      let deps =
        Dependence.of_vectors (List.map (fun (a, b, c) -> [| a; b; c |]) rows)
      in
      match Skew.suggest deps with
      | None -> false
      | Some t ->
        Skew.is_valid_skew t
        && Dependence.all_nonnegative (Dependence.transform t deps))

(* ---------- Access: dependence extraction from subscripts ---------- *)

let test_access_sor_extraction () =
  (* SOR reads written as subscript shifts of the identity write *)
  let module Access = Tiles_loop.Access in
  let w = Access.identity 3 in
  let reads =
    List.map (Access.shifted 3)
      [ [| 0; 1; 0 |]; [| 0; 0; 1 |]; [| 1; -1; 0 |]; [| 1; 0; -1 |]; [| 1; 0; 0 |] ]
  in
  let deps = Access.dependencies ~write:w ~reads in
  Alcotest.(check int) "count" 5 (Dependence.count deps);
  Alcotest.(check bool) "matches sor" true
    (Dependence.to_matrix deps = Dependence.to_matrix sor_deps)

let test_access_skewed_write () =
  (* a skewed write reference A[t+i, i]: reads with the same linear part
     and shifted offsets still yield uniform dependencies in iteration
     space *)
  let module Access = Tiles_loop.Access in
  let m = Intmat.of_rows [ [ 1; 1 ]; [ 0; 1 ] ] in
  let w = Access.make ~m ~offset:[| 0; 0 |] in
  let r = Access.make ~m ~offset:[| -1; -1 |] in
  let d = Access.dependence_of_read ~write:w ~read:r in
  (* f_w(j - d) = f_r(j): m·d = (1,1) → d = (0,1) *)
  Alcotest.(check bool) "dep" true (Vec.equal [| 0; 1 |] d)

let test_access_rejects_nonuniform () =
  let module Access = Tiles_loop.Access in
  let w = Access.identity 2 in
  (* transposed read A[j,i]: not uniform *)
  let r = Access.make ~m:(Intmat.of_rows [ [ 0; 1 ]; [ 1; 0 ] ]) ~offset:[| 0; 0 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Access.dependence_of_read ~write:w ~read:r);
       false
     with Failure _ -> true);
  (* aliasing read (d = 0) *)
  Alcotest.(check bool) "alias raises" true
    (try
       ignore (Access.dependence_of_read ~write:w ~read:w);
       false
     with Failure _ -> true)

let test_access_statement_nest () =
  let module Access = Tiles_loop.Access in
  let space = Polyhedron.box [ (0, 5); (0, 5) ] in
  let nest =
    Access.statement_nest ~name:"pascal" ~space ~write:(Access.identity 2)
      ~reads:[ Access.shifted 2 [| 1; 0 |]; Access.shifted 2 [| 0; 1 |] ]
  in
  Alcotest.(check int) "deps" 2 (Dependence.count nest.Tiles_loop.Nest.deps)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_loop"
    [
      ( "dependence",
        [
          Alcotest.test_case "basics" `Quick test_dependence_basics;
          Alcotest.test_case "invalid" `Quick test_dependence_invalid;
          Alcotest.test_case "matrix roundtrip" `Quick test_dependence_matrix_roundtrip;
        ] );
      ( "nest",
        [
          Alcotest.test_case "legality" `Quick test_nest_legality;
          Alcotest.test_case "rejects illegal" `Quick test_nest_rejects_illegal;
          Alcotest.test_case "tiling cone" `Quick test_tiling_cone_of_nest;
        ] );
      ( "skew",
        [
          Alcotest.test_case "paper SOR skew" `Quick test_paper_sor_skew;
          Alcotest.test_case "paper Jacobi skew" `Quick test_paper_jacobi_skew;
          Alcotest.test_case "suggest" `Quick test_suggest_skew;
          Alcotest.test_case "suggest impossible" `Quick test_suggest_skew_impossible;
          Alcotest.test_case "apply preserves cardinality" `Quick
            test_skew_apply_preserves_points;
          q prop_suggested_skew_works;
        ] );
      ( "access",
        [
          Alcotest.test_case "sor extraction" `Quick test_access_sor_extraction;
          Alcotest.test_case "skewed write" `Quick test_access_skewed_write;
          Alcotest.test_case "rejects non-uniform" `Quick test_access_rejects_nonuniform;
          Alcotest.test_case "statement nest" `Quick test_access_statement_nest;
        ] );
    ]
