module Tiling = Tiles_core.Tiling
module Ttis = Tiles_core.Ttis
module Tile_space = Tiles_core.Tile_space
module Mapping = Tiles_core.Mapping
module Comm = Tiles_core.Comm
module Lds = Tiles_core.Lds
module Plan = Tiles_core.Plan
module Schedule = Tiles_core.Schedule
module Nest = Tiles_loop.Nest
module Dependence = Tiles_loop.Dependence
module Polyhedron = Tiles_poly.Polyhedron
module Rat = Tiles_rat.Rat
module Vec = Tiles_util.Vec

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal
let r = Rat.make
let i = Rat.of_int

(* ------------------------------------------------------------------ *)
(* Tilings used throughout: the paper's families at small factors.     *)
(* ------------------------------------------------------------------ *)

(* skewed-SOR non-rectangular tiling: rows (1/x,0,0),(0,1/y,0),(-1/z,0,1/z) *)
let sor_nr x y z =
  Tiling.of_rows
    [ [ r 1 x; i 0; i 0 ]; [ i 0; r 1 y; i 0 ]; [ r (-1) z; i 0; r 1 z ] ]

(* skewed-Jacobi non-rectangular tiling: rows (1/x,-1/2x,0),(0,1/y,0),(0,0,1/z) *)
let jacobi_nr x y z =
  Tiling.of_rows
    [ [ r 1 x; r (-1) (2 * x); i 0 ]; [ i 0; r 1 y; i 0 ]; [ i 0; i 0; r 1 z ] ]

(* ADI nr3: rows (1/x,-1/x,-1/x),(0,1/y,0),(0,0,1/z) *)
let adi_nr3 x y z =
  Tiling.of_rows
    [ [ r 1 x; r (-1) x; r (-1) x ]; [ i 0; r 1 y; i 0 ]; [ i 0; i 0; r 1 z ] ]

(* a 2D tiling with a genuinely non-trivial stride structure: H' =
   [[2,-1],[0,1]] scaled by V = diag(4,4); strides come out (1,2) *)
let oblique2d =
  Tiling.of_rows [ [ r 1 2; r (-1) 4 ]; [ i 0; r 1 4 ] ]

let skewed_sor_deps =
  Dependence.of_vectors
    [ [| 1; 1; 2 |]; [| 0; 1; 0 |]; [| 1; 0; 2 |]; [| 1; 1; 1 |]; [| 0; 0; 1 |] ]

let skewed_jacobi_deps =
  Dependence.of_vectors
    [ [| 1; 1; 1 |]; [| 1; 2; 1 |]; [| 1; 0; 1 |]; [| 1; 1; 2 |]; [| 1; 1; 0 |] ]

let adi_deps =
  Dependence.of_vectors [ [| 1; 0; 0 |]; [| 1; 1; 0 |]; [| 1; 0; 1 |] ]

(* a small skewed-SOR-shaped iteration space: t' in [1,m], i' in
   [t'+1,t'+n], j' in [2t'+1, 2t'+n] *)
let sor_space m n =
  let open Tiles_poly.Constr in
  Polyhedron.make ~dim:3
    [
      lower_bound_var 3 0 1;
      upper_bound_var 3 0 m;
      ge [| -1; 1; 0 |] 1;
      le [| -1; 1; 0 |] n;
      ge [| -2; 0; 1 |] 1;
      le [| -2; 0; 1 |] n;
    ]

let adi_space t n = Polyhedron.box [ (1, t); (1, n); (1, n) ]

(* ------------------------------------------------------------------ *)
(* Tiling construction                                                 *)
(* ------------------------------------------------------------------ *)

let test_tiling_sor_structure () =
  let t = sor_nr 2 3 4 in
  Alcotest.check vec "v" [| 2; 3; 4 |] t.Tiling.v;
  Alcotest.check vec "c" [| 1; 1; 1 |] t.Tiling.c;
  Alcotest.(check int) "tile size" 24 (Tiling.tile_size t)

let test_tiling_jacobi_structure () =
  let t = jacobi_nr 3 4 2 in
  (* v_1 = lcm(3, 6) = 6, strides (1,2,1) *)
  Alcotest.check vec "v" [| 6; 4; 2 |] t.Tiling.v;
  Alcotest.check vec "c" [| 1; 2; 1 |] t.Tiling.c;
  Alcotest.(check int) "tile size" 24 (Tiling.tile_size t);
  Alcotest.(check int) "offset a21" 1 t.Tiling.hnf.(1).(0)

let test_tiling_rectangular () =
  let t = Tiling.rectangular [ 2; 3; 4 ] in
  Alcotest.check vec "v" [| 2; 3; 4 |] t.Tiling.v;
  Alcotest.check vec "c" [| 1; 1; 1 |] t.Tiling.c;
  Alcotest.(check int) "tile size" 24 (Tiling.tile_size t)

let test_tiling_oblique2d () =
  let t = oblique2d in
  Alcotest.check vec "v" [| 4; 4 |] t.Tiling.v;
  Alcotest.check vec "c" [| 1; 2 |] t.Tiling.c;
  Alcotest.(check int) "tile size" 8 (Tiling.tile_size t)

let test_tiling_rejects_bad_divisibility () =
  (* strides (1,2) but v = (4,3): c_2 = 2 does not divide 3 *)
  let rows = [ [ r 1 2; r (-1) 4 ]; [ i 0; r 1 3 ] ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tiling.of_rows rows);
       false
     with Invalid_argument _ -> true)

let test_tiling_rejects_singular () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tiling.of_rows [ [ i 1; i 2 ]; [ i 2; i 4 ] ]);
       false
     with Invalid_argument _ -> true)

let test_legality () =
  Alcotest.(check bool) "sor_nr legal" true
    (Tiling.legal_for (sor_nr 2 2 4) skewed_sor_deps);
  (* a tiling with a row opposing the dependencies is illegal *)
  let bad =
    Tiling.of_rows
      [ [ r (-1) 2; i 0; i 0 ]; [ i 0; r 1 2; i 0 ]; [ i 0; i 0; r 1 2 ] ]
  in
  Alcotest.(check bool) "negative row illegal" false
    (Tiling.legal_for bad skewed_sor_deps)

(* ------------------------------------------------------------------ *)
(* TTIS                                                                *)
(* ------------------------------------------------------------------ *)

let all_tilings =
  [
    ("sor_nr 2 3 4", sor_nr 2 3 4);
    ("jacobi_nr 3 4 2", jacobi_nr 3 4 2);
    ("adi_nr3 3 2 4", adi_nr3 3 2 4);
    ("rect 2 3 4", Tiling.rectangular [ 2; 3; 4 ]);
    ("oblique2d", oblique2d);
  ]

let test_ttis_count () =
  List.iter
    (fun (name, t) ->
      Alcotest.(check int)
        (name ^ " count = tile size")
        (Tiling.tile_size t) (Ttis.count t))
    all_tilings

let test_ttis_matches_bruteforce () =
  List.iter
    (fun (name, t) ->
      let fast = ref [] and slow = ref [] in
      Ttis.iter t (fun j' -> fast := Vec.copy j' :: !fast);
      Ttis.iter_bruteforce t (fun j' -> slow := Vec.copy j' :: !slow);
      Alcotest.(check int)
        (name ^ " same points")
        0
        (compare (List.rev !fast) (List.rev !slow)))
    all_tilings

let test_ttis_incremental_matches_iter () =
  (* the paper's Fig. 2 incremental-offset scheme must enumerate exactly
     the same sequence as the triangular-solve enumeration *)
  List.iter
    (fun (name, t) ->
      let a = ref [] and b = ref [] in
      Ttis.iter t (fun j' -> a := Vec.copy j' :: !a);
      Ttis.iter_incremental t (fun j' -> b := Vec.copy j' :: !b);
      Alcotest.(check int) (name ^ " same sequence") 0 (compare !a !b))
    all_tilings

let test_shape_from_cone_adi () =
  (* automatic shape selection reconstructs the paper's H_nr3 for ADI *)
  let tiling = Tiles_core.Shape.from_cone adi_deps ~factors:[ 3; 4; 4 ] in
  let expected =
    Tiling.of_rows
      [ [ r 1 3; r (-1) 3; r (-1) 3 ]; [ i 0; r 1 4; i 0 ]; [ i 0; i 0; r 1 4 ] ]
  in
  Alcotest.(check bool) "equals nr3" true
    (Tiles_linalg.Ratmat.equal tiling.Tiling.h expected.Tiling.h)

let test_shape_from_cone_legal () =
  (* cone-derived rows are legal for the dependencies by construction *)
  List.iter
    (fun deps ->
      match Tiles_core.Shape.from_cone deps ~factors:[ 4; 4; 4 ] with
      | tiling ->
        Alcotest.(check bool) "legal" true (Tiling.legal_for tiling deps)
      | exception Invalid_argument _ -> () (* stride divisibility may fail *))
    [ adi_deps; skewed_sor_deps ]

let test_ttis_mem () =
  let t = jacobi_nr 3 4 2 in
  Alcotest.(check bool) "origin" true (Ttis.mem t [| 0; 0; 0 |]);
  (* (0,1,0) is off-lattice for H' = [[2,-1,0],[0,1,0],[0,0,1]]:
     j' = H'j means j2' = j2, j1' = 2j1 - j2 so (0,1,0) needs 2j1 = 1 *)
  Alcotest.(check bool) "hole" false (Ttis.mem t [| 0; 1; 0 |]);
  Alcotest.(check bool) "lattice point (1,1,0)" true (Ttis.mem t [| 1; 1; 0 |]);
  Alcotest.(check bool) "outside box" false (Ttis.mem t [| 6; 0; 0 |])

let test_ttis_points_are_lattice_images () =
  (* every TTIS point must be H'·j for an integer j in the origin tile *)
  let t = jacobi_nr 3 4 2 in
  Ttis.iter t (fun j' ->
      let j = Tiling.global_of t ~tile:[| 0; 0; 0 |] j' in
      Alcotest.check vec "tile_of j = 0" [| 0; 0; 0 |] (Tiling.tile_of t j);
      Alcotest.check vec "local_of roundtrip" j'
        (Tiling.local_of t ~tile:[| 0; 0; 0 |] j))

(* ------------------------------------------------------------------ *)
(* Tile space: exact partition of J^n                                  *)
(* ------------------------------------------------------------------ *)

let check_partition name space tiling =
  let ts = Tile_space.make space tiling in
  (* 1. every iteration's tile is a candidate *)
  Polyhedron.iter_points space (fun j ->
      let s = Tiling.tile_of tiling j in
      if not (Tile_space.contains ts s) then
        Alcotest.failf "%s: tile %s of %s not candidate" name
          (Vec.to_string s) (Vec.to_string j));
  (* 2. per-tile iteration counts sum to |J^n| *)
  let total =
    List.fold_left
      (fun acc s -> acc + Tile_space.tile_iterations ts s)
      0 (Tile_space.candidates ts)
  in
  Alcotest.(check int) (name ^ " partition total") (Polyhedron.count_points space) total

let test_partition_sor () = check_partition "sor" (sor_space 4 6) (sor_nr 2 3 4)
let test_partition_sor_rect () =
  check_partition "sor-rect" (sor_space 4 6) (Tiling.rectangular [ 2; 3; 4 ])
let test_partition_jacobi () =
  check_partition "jacobi" (adi_space 5 8) (jacobi_nr 3 4 2)
let test_partition_adi () = check_partition "adi" (adi_space 5 7) (adi_nr3 3 2 4)
let test_partition_oblique2d () =
  check_partition "oblique2d" (Polyhedron.box [ (0, 9); (0, 11) ]) oblique2d

let test_slab_points_fast_count () =
  (* the arithmetic (FM + range-count) path must agree with brute-force
     enumeration for every candidate tile and several slab bounds *)
  List.iter
    (fun (name, space, tiling) ->
      let ts = Tile_space.make space tiling in
      let n = Tiling.dim tiling in
      List.iter
        (fun s ->
          List.iter
            (fun lo ->
              let brute = ref 0 in
              Tile_space.iter_slab_points ts ~tile:s ~lo
                (fun ~local:_ ~global:_ -> incr brute);
              Alcotest.(check int)
                (Printf.sprintf "%s tile %s lo %s" name (Vec.to_string s)
                   (Vec.to_string lo))
                !brute
                (Tile_space.slab_points ts ~tile:s ~lo))
            [
              Array.make n 0;
              Array.init n (fun k -> if k = 0 then tiling.Tiling.v.(0) - 1 else 0);
              Array.init n (fun k -> tiling.Tiling.v.(k) / 2);
            ])
        (Tile_space.candidates ts))
    [
      ("sor", sor_space 4 6, sor_nr 2 3 4);
      ("jacobi", adi_space 5 8, jacobi_nr 3 4 2);
      ("adi", adi_space 5 7, adi_nr3 3 2 4);
      ("oblique2d", Polyhedron.box [ (0, 9); (0, 11) ], oblique2d);
    ]

let test_tile_points_lex_and_inside () =
  let space = adi_space 5 7 in
  let ts = Tile_space.make space (adi_nr3 3 2 4) in
  List.iter
    (fun s ->
      let last = ref None in
      Tile_space.iter_tile_points ts ~tile:s (fun ~local ~global ->
          Alcotest.(check bool) "inside space" true (Polyhedron.member space global);
          (match !last with
          | Some prev ->
            Alcotest.(check bool) "lexicographic" true
              (Vec.compare_lex prev local < 0)
          | None -> ());
          last := Some (Vec.copy local)))
    (Tile_space.candidates ts)

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let test_mapping_roundtrip () =
  let ts = Tile_space.make (sor_space 4 6) (sor_nr 2 3 4) in
  let mp = Mapping.make ts in
  List.iter
    (fun s ->
      let pid, t = Mapping.split mp s in
      Alcotest.check vec "join/split" s (Mapping.join mp ~pid ~ts:t);
      Alcotest.(check bool) "valid" true (Mapping.valid mp ~pid ~ts:t);
      match Mapping.rank_of_pid mp pid with
      | None -> Alcotest.fail "pid not found"
      | Some rank -> Alcotest.check vec "pid_of_rank" pid (Mapping.pid_of_rank mp rank))
    (Tile_space.candidates ts)

let test_mapping_covers_all_tiles () =
  let ts = Tile_space.make (adi_space 5 7) (adi_nr3 3 2 4) in
  let mp = Mapping.make ts in
  let from_ranks =
    List.concat (List.init (Mapping.nprocs mp) (Mapping.tiles_of_rank mp))
  in
  Alcotest.(check int) "tile counts"
    (List.length (Tile_space.candidates ts))
    (List.length from_ranks);
  let sorted = List.sort Vec.compare_lex from_ranks in
  Alcotest.(check bool) "same sets" true
    (List.equal Vec.equal sorted (Tile_space.candidates ts))

let test_mapping_max_trip () =
  (* adi_space 5 7 with adi_nr3(3,2,4): the oblique first row
     (t−i−j)/3 spans ⌊−13/3⌋..⌊3/3⌋ = 7 tile indices, more than dims 1
     (4) and 2 (2) — so the max-trip dimension is 0, matching the paper's
     choice of mapping ADI along the first dimension *)
  let ts = Tile_space.make (adi_space 5 7) (adi_nr3 3 2 4) in
  Alcotest.(check int) "m" 0 (Mapping.max_trip_dim ts);
  let mp = Mapping.make ts in
  Alcotest.(check int) "mapping uses it" 0 mp.Mapping.m

let test_mapping_override () =
  let ts = Tile_space.make (adi_space 5 7) (adi_nr3 3 2 4) in
  let mp = Mapping.make ~m:0 ts in
  Alcotest.(check int) "m forced" 0 mp.Mapping.m

(* ------------------------------------------------------------------ *)
(* Comm                                                                *)
(* ------------------------------------------------------------------ *)

let test_comm_sor () =
  let tiling = sor_nr 3 3 3 in
  let comm = Comm.make tiling skewed_sor_deps ~m:2 in
  (* D' = H'·D with H' = [[1,0,0],[0,1,0],[-1,0,1]] *)
  Alcotest.check vec "max d'" [| 1; 1; 1 |] comm.Comm.max_d';
  Alcotest.check vec "CC" [| 2; 2; 2 |] comm.Comm.cc;
  (* off_m = v_m / c_m = 3 for the mapping dimension *)
  Alcotest.check vec "off" [| 1; 1; 3 |] comm.Comm.off;
  List.iter
    (fun d ->
      Alcotest.(check bool) "D^S in {0,1}^3" true
        (Array.for_all (fun x -> x = 0 || x = 1) d))
    comm.Comm.ds

let test_comm_tile_too_small () =
  (* skewed SOR has a dependence with third component 2; for a rectangular
     tile of extent 1 in that dimension (H' = I so d' = d) the tile
     dependence would exceed 1 and must be rejected. The non-rectangular
     tiling absorbs that reach (d'_3 = −d_1 + d_3 = 1), which is exactly
     the point of choosing rows from the tiling cone. *)
  let tiling = Tiling.rectangular [ 3; 3; 1 ] in
  Alcotest.(check bool) "rect z=1 rejected" true
    (try
       ignore (Comm.make tiling skewed_sor_deps ~m:2);
       false
     with Invalid_argument _ -> true);
  (* and the non-rectangular counterpart is accepted *)
  let comm = Comm.make (sor_nr 3 3 1) skewed_sor_deps ~m:2 in
  Alcotest.(check bool) "nr z=1 ok" true (List.length comm.Comm.ds > 0)

let test_comm_dm_projection () =
  let tiling = adi_nr3 3 2 4 in
  let comm = Comm.make tiling adi_deps ~m:1 in
  List.iter
    (fun (dm, dss) ->
      Alcotest.(check bool) "dm nonzero" false (Vec.is_zero dm);
      List.iter
        (fun ds ->
          Alcotest.check vec "projection consistent" dm (Comm.dm_of_ds comm ds))
        dss)
    comm.Comm.dm

let test_comm_minsucc () =
  let tiling = sor_nr 3 3 3 in
  let comm = Comm.make tiling skewed_sor_deps ~m:2 in
  List.iter
    (fun (dm, dss) ->
      let ms = Comm.minsucc_ds comm dm in
      List.iter
        (fun ds ->
          Alcotest.(check bool) "minsucc minimal along m" true
            (ms.(comm.Comm.m) <= ds.(comm.Comm.m)))
        dss)
    comm.Comm.dm

(* ------------------------------------------------------------------ *)
(* LDS: map / map_inv                                                  *)
(* ------------------------------------------------------------------ *)

let test_lds_shape () =
  let tiling = jacobi_nr 3 4 2 in
  let comm = Comm.make tiling skewed_jacobi_deps ~m:0 in
  let shape = Lds.shape tiling comm ~ntiles:5 in
  (* v = (6,4,2), c = (1,2,1); per-tile cells (6,2,2); m = 0 *)
  Alcotest.(check int) "dim m cells" (comm.Comm.off.(0) + (5 * 6)) shape.Lds.dims.(0);
  Alcotest.(check int) "dim 1 cells" (comm.Comm.off.(1) + 2) shape.Lds.dims.(1);
  Alcotest.(check int) "dim 2 cells" (comm.Comm.off.(2) + 2) shape.Lds.dims.(2)

let test_lds_map_roundtrip () =
  List.iter
    (fun (name, tiling, deps, m) ->
      let comm = Comm.make tiling deps ~m in
      for t = 0 to 3 do
        Ttis.iter tiling (fun j' ->
            let j'' = Lds.map tiling comm ~t j' in
            let t', j'r = Lds.map_inv tiling comm j'' in
            Alcotest.(check int) (name ^ " tile idx") t t';
            Alcotest.check vec (name ^ " j'") j' j'r)
      done)
    [
      ("sor", sor_nr 2 3 4, skewed_sor_deps, 2);
      ("jacobi", jacobi_nr 3 4 2, skewed_jacobi_deps, 0);
      ("adi", adi_nr3 3 2 4, adi_deps, 1);
    ]

let test_lds_map_injective () =
  (* distinct (t, j') pairs map to distinct cells *)
  let tiling = jacobi_nr 3 4 2 in
  let comm = Comm.make tiling skewed_jacobi_deps ~m:0 in
  let shape = Lds.shape tiling comm ~ntiles:3 in
  let seen = Hashtbl.create 97 in
  for t = 0 to 2 do
    Ttis.iter tiling (fun j' ->
        let idx = Lds.map_index shape (Lds.map tiling comm ~t j') in
        if Hashtbl.mem seen idx then Alcotest.fail "collision";
        Hashtbl.add seen idx ())
  done;
  Alcotest.(check int) "cells used" (3 * Tiling.tile_size tiling)
    (Hashtbl.length seen)

let test_lds_halo_disjoint () =
  (* halo writes (shifted by -d^S·V) never land in the computation region
     column range of dims <> m *)
  let tiling = sor_nr 3 3 3 in
  let comm = Comm.make tiling skewed_sor_deps ~m:2 in
  List.iter
    (fun ds ->
      if not (Vec.is_zero (Comm.dm_of_ds comm ds)) then
        Ttis.iter tiling (fun j' ->
            if
              Array.for_all2
                (fun x k -> x >= k)
                (Array.mapi (fun k x -> if ds.(k) = 1 then x else max_int) j')
                (Array.mapi (fun k cc -> if ds.(k) = 1 then cc else 0) comm.Comm.cc)
            then begin
              let j'' = Lds.map tiling comm ~t:0 j' in
              Array.iteri
                (fun k x ->
                  if k <> comm.Comm.m && ds.(k) = 1 then begin
                    let shifted = x - (ds.(k) * tiling.Tiling.v.(k) / tiling.Tiling.c.(k)) in
                    Alcotest.(check bool) "halo cell" true
                      (shifted >= 0 && shifted < comm.Comm.off.(k))
                  end)
                j''
            end))
    comm.Comm.ds

let test_lds_map_inv_rejects_halo () =
  let tiling = sor_nr 3 3 3 in
  let comm = Comm.make tiling skewed_sor_deps ~m:2 in
  (* cell (0, ...) is halo storage in dimension 0 (off_0 = 1) *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lds.map_inv tiling comm [| 0; 1; 3 |]);
       false
     with Invalid_argument _ -> true)

let test_lds_map_index_bounds () =
  let tiling = sor_nr 3 3 3 in
  let comm = Comm.make tiling skewed_sor_deps ~m:2 in
  let shape = Lds.shape tiling comm ~ntiles:2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lds.map_index shape [| 999; 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_lds_rejects_bad_ntiles () =
  let tiling = sor_nr 3 3 3 in
  let comm = Comm.make tiling skewed_sor_deps ~m:2 in
  Alcotest.check_raises "ntiles" (Invalid_argument "Lds.shape: ntiles")
    (fun () -> ignore (Lds.shape tiling comm ~ntiles:0))

let test_global_of_rejects_off_lattice () =
  (* (0,1,0) is an H'-lattice hole for the Jacobi tiling *)
  let t = jacobi_nr 3 4 2 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Tiling.global_of t ~tile:[| 0; 0; 0 |] [| 0; 1; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_tiling_rejects_nonintegral_p () =
  (* H = [[-1/2, 0], [1/3, 1/2]] passes the stride check but P is not
     integral: tile origins miss the integer grid (reproduction finding
     #2 in DESIGN.md) *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Tiling.of_rows [ [ r (-1) 2; i 0 ]; [ r 1 3; r 1 2 ] ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Plan: loc / loc_inv (Tables 1 and 2)                                *)
(* ------------------------------------------------------------------ *)

let check_loc_roundtrip name space tiling deps =
  let nest = Nest.make ~name ~space ~deps in
  let plan = Plan.make nest tiling in
  Polyhedron.iter_points space (fun j ->
      let pid, j'' = Plan.loc plan j in
      let j2 = Plan.loc_inv plan ~pid j'' in
      Alcotest.check vec (name ^ " loc roundtrip") j j2)

let test_loc_sor () = check_loc_roundtrip "sor" (sor_space 4 6) (sor_nr 2 3 4) skewed_sor_deps
let test_loc_jacobi () =
  check_loc_roundtrip "jacobi" (adi_space 5 8) (jacobi_nr 3 4 2) skewed_jacobi_deps
let test_loc_adi () = check_loc_roundtrip "adi" (adi_space 5 7) (adi_nr3 3 2 4) adi_deps

let test_loc_distinct_cells () =
  (* loc is injective per processor *)
  let nest = Nest.make ~name:"adi" ~space:(adi_space 5 7) ~deps:adi_deps in
  let plan = Plan.make nest (adi_nr3 3 2 4) in
  let seen = Hashtbl.create 997 in
  Polyhedron.iter_points (adi_space 5 7) (fun j ->
      let pid, j'' = Plan.loc plan j in
      let key = (Vec.to_list pid, Vec.to_list j'') in
      if Hashtbl.mem seen key then Alcotest.fail "loc collision";
      Hashtbl.add seen key ())

(* ------------------------------------------------------------------ *)
(* Schedule: the paper's §4.1 wavefront argument                       *)
(* ------------------------------------------------------------------ *)

let test_schedule_nonrect_fewer_steps () =
  (* same factors, same space: the non-rectangular (tiling-cone) SOR tiling
     must need strictly fewer wavefront steps than the rectangular one *)
  let space = sor_space 8 12 in
  let deps = skewed_sor_deps in
  let plan_r =
    Plan.make (Nest.make ~name:"sor-r" ~space ~deps) (Tiling.rectangular [ 4; 4; 4 ])
  in
  let plan_nr =
    Plan.make (Nest.make ~name:"sor-nr" ~space ~deps) (sor_nr 4 4 4)
  in
  Alcotest.(check bool) "fewer steps" true
    (Schedule.steps plan_nr < Schedule.steps plan_r)

let test_schedule_adi_ordering () =
  (* t_nr3 < t_nr1, t_nr2 < t_r on a space where all four are defined *)
  let space = adi_space 12 12 in
  let deps = adi_deps in
  let mk tiling = Plan.make ~m:0 (Nest.make ~name:"adi" ~space ~deps) tiling in
  let nr1 =
    Tiling.of_rows
      [ [ r 1 3; r (-1) 3; i 0 ]; [ i 0; r 1 3; i 0 ]; [ i 0; i 0; r 1 3 ] ]
  in
  let nr2 =
    Tiling.of_rows
      [ [ r 1 3; i 0; r (-1) 3 ]; [ i 0; r 1 3; i 0 ]; [ i 0; i 0; r 1 3 ] ]
  in
  let s_r = Schedule.steps (mk (Tiling.rectangular [ 3; 3; 3 ])) in
  let s_nr1 = Schedule.steps (mk nr1) in
  let s_nr2 = Schedule.steps (mk nr2) in
  let s_nr3 = Schedule.steps (mk (adi_nr3 3 3 3)) in
  Alcotest.(check bool) "nr1 < r" true (s_nr1 < s_r);
  Alcotest.(check bool) "nr2 < r" true (s_nr2 < s_r);
  Alcotest.(check bool) "nr3 < nr1" true (s_nr3 < s_nr1);
  Alcotest.(check bool) "nr3 < nr2" true (s_nr3 < s_nr2)

let test_predicted_time_positive () =
  let plan =
    Plan.make
      (Nest.make ~name:"adi" ~space:(adi_space 5 7) ~deps:adi_deps)
      (adi_nr3 3 2 4)
  in
  Alcotest.(check bool) "positive" true
    (Schedule.predicted_time plan ~compute_per_point:1e-7 ~comm_per_step:1e-4
     > 0.)

let () =
  Alcotest.run "tiles_core"
    [
      ( "tiling",
        [
          Alcotest.test_case "sor structure" `Quick test_tiling_sor_structure;
          Alcotest.test_case "jacobi structure" `Quick test_tiling_jacobi_structure;
          Alcotest.test_case "rectangular" `Quick test_tiling_rectangular;
          Alcotest.test_case "oblique2d" `Quick test_tiling_oblique2d;
          Alcotest.test_case "bad divisibility" `Quick test_tiling_rejects_bad_divisibility;
          Alcotest.test_case "singular" `Quick test_tiling_rejects_singular;
          Alcotest.test_case "non-integral P" `Quick test_tiling_rejects_nonintegral_p;
          Alcotest.test_case "off-lattice global_of" `Quick test_global_of_rejects_off_lattice;
          Alcotest.test_case "legality" `Quick test_legality;
        ] );
      ( "ttis",
        [
          Alcotest.test_case "count" `Quick test_ttis_count;
          Alcotest.test_case "matches bruteforce" `Quick test_ttis_matches_bruteforce;
          Alcotest.test_case "incremental offsets" `Quick test_ttis_incremental_matches_iter;
          Alcotest.test_case "shape from cone (ADI)" `Quick test_shape_from_cone_adi;
          Alcotest.test_case "shape from cone legal" `Quick test_shape_from_cone_legal;
          Alcotest.test_case "mem" `Quick test_ttis_mem;
          Alcotest.test_case "lattice images" `Quick test_ttis_points_are_lattice_images;
        ] );
      ( "tile-space",
        [
          Alcotest.test_case "partition sor" `Quick test_partition_sor;
          Alcotest.test_case "partition sor rect" `Quick test_partition_sor_rect;
          Alcotest.test_case "partition jacobi" `Quick test_partition_jacobi;
          Alcotest.test_case "partition adi" `Quick test_partition_adi;
          Alcotest.test_case "partition oblique2d" `Quick test_partition_oblique2d;
          Alcotest.test_case "slab fast count" `Quick test_slab_points_fast_count;
          Alcotest.test_case "tile points lex+inside" `Quick test_tile_points_lex_and_inside;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "roundtrip" `Quick test_mapping_roundtrip;
          Alcotest.test_case "covers all tiles" `Quick test_mapping_covers_all_tiles;
          Alcotest.test_case "max trip" `Quick test_mapping_max_trip;
          Alcotest.test_case "override" `Quick test_mapping_override;
        ] );
      ( "comm",
        [
          Alcotest.test_case "sor vectors" `Quick test_comm_sor;
          Alcotest.test_case "tile too small" `Quick test_comm_tile_too_small;
          Alcotest.test_case "dm projection" `Quick test_comm_dm_projection;
          Alcotest.test_case "minsucc" `Quick test_comm_minsucc;
        ] );
      ( "lds",
        [
          Alcotest.test_case "shape" `Quick test_lds_shape;
          Alcotest.test_case "map roundtrip" `Quick test_lds_map_roundtrip;
          Alcotest.test_case "map injective" `Quick test_lds_map_injective;
          Alcotest.test_case "halo disjoint" `Quick test_lds_halo_disjoint;
          Alcotest.test_case "map_inv rejects halo" `Quick test_lds_map_inv_rejects_halo;
          Alcotest.test_case "map_index bounds" `Quick test_lds_map_index_bounds;
          Alcotest.test_case "bad ntiles" `Quick test_lds_rejects_bad_ntiles;
        ] );
      ( "plan",
        [
          Alcotest.test_case "loc roundtrip sor" `Quick test_loc_sor;
          Alcotest.test_case "loc roundtrip jacobi" `Quick test_loc_jacobi;
          Alcotest.test_case "loc roundtrip adi" `Quick test_loc_adi;
          Alcotest.test_case "loc injective" `Quick test_loc_distinct_cells;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "nonrect fewer steps" `Quick test_schedule_nonrect_fewer_steps;
          Alcotest.test_case "adi ordering" `Quick test_schedule_adi_ordering;
          Alcotest.test_case "predicted time" `Quick test_predicted_time_positive;
        ] );
    ]
