(* Integration tests of the tilec command-line tool: drive the built
   binary end-to-end and check its output. *)

let tilec =
  lazy
    (let candidates =
       [ "../bin/tilec.exe"; "_build/default/bin/tilec.exe"; "bin/tilec.exe" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some p -> p
     | None -> Alcotest.fail "tilec.exe not found (build it first)")

let run args =
  let cmd = Printf.sprintf "%s %s 2>&1" (Lazy.force tilec) args in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let contains s needle = Astring.String.is_infix ~affix:needle s

let check_ok args needles =
  let status, out = run args in
  if status <> Unix.WEXITED 0 then
    Alcotest.failf "tilec %s failed:\n%s" args out;
  List.iter
    (fun n ->
      if not (contains out n) then
        Alcotest.failf "tilec %s: %S not in output:\n%s" args n out)
    needles

let test_plan () =
  check_ok "plan --app sor -M 12 -N 16 --variant nonrect -x 6 -y 7 -z 4"
    [ "plan for sor"; "tile size"; "CC vector"; "D^S"; "processors" ]

let test_cone () =
  check_ok "cone --app adi" [ "tiling cone extreme rays"; "(1, -1, -1)" ]

let test_simulate () =
  check_ok "simulate --app adi -t 12 -n 16 --variant nr3 -x 3 -y 4 -z 4 --full"
    [ "speedup"; "max |parallel - sequential| = 0" ]

let test_emit () =
  let tmp = Filename.temp_file "tilec" ".c" in
  check_ok
    (Printf.sprintf
       "emit-mpi --app jacobi -t 8 -n 10 --variant nonrect -x 2 -y 4 -z 4 -o %s"
       (Filename.quote tmp))
    [];
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  List.iter
    (fun n ->
      if not (contains src n) then Alcotest.failf "emitted C lacks %S" n)
    [ "MPI_Init"; "MPI_Send"; "ttis_start"; "static const int HNF" ]

let test_bad_app () =
  let status, _ = run "plan --app nope" in
  Alcotest.(check bool) "non-zero exit" true (status <> Unix.WEXITED 0)

let () =
  Alcotest.run "tilec_cli"
    [
      ( "cli",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "cone" `Quick test_cone;
          Alcotest.test_case "simulate --full" `Quick test_simulate;
          Alcotest.test_case "emit-mpi" `Quick test_emit;
          Alcotest.test_case "bad app" `Quick test_bad_app;
        ] );
    ]
