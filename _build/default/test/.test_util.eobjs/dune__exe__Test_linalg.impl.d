test/test_linalg.ml: Alcotest Array Fmt List Printf QCheck QCheck_alcotest Tiles_linalg Tiles_rat Tiles_util
