test/test_core.ml: Alcotest Array Fmt Hashtbl List Printf Tiles_core Tiles_linalg Tiles_loop Tiles_poly Tiles_rat Tiles_util
