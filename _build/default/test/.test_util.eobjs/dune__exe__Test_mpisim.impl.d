test/test_mpisim.ml: Alcotest Array Float List Tiles_mpisim
