test/test_viz.ml: Alcotest Array Filename Hashtbl List String Sys Tiles_core Tiles_loop Tiles_mpisim Tiles_poly Tiles_rat Tiles_runtime Tiles_viz
