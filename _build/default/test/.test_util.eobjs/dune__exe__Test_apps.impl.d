test/test_apps.ml: Alcotest Float List Printf Tiles_apps Tiles_core Tiles_loop Tiles_mpisim Tiles_poly Tiles_runtime Tiles_util
