test/test_util.ml: Alcotest Array Fmt Gen Heap Ints List QCheck QCheck_alcotest String Table Tiles_util Vec
