test/test_cli.ml: Alcotest Astring Buffer Filename Lazy List Printf Sys Unix
