test/test_rat.ml: Alcotest Fmt QCheck QCheck_alcotest Tiles_rat
