test/test_props.ml: Alcotest Array List Printf QCheck QCheck_alcotest Tiles_core Tiles_linalg Tiles_loop Tiles_mpisim Tiles_poly Tiles_rat Tiles_runtime Tiles_util
