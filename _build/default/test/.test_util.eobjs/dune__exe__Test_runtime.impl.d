test/test_runtime.ml: Alcotest Array Float List Tiles_apps Tiles_core Tiles_linalg Tiles_loop Tiles_mpisim Tiles_poly Tiles_rat Tiles_runtime
