test/test_codegen.ml: Alcotest Astring Buffer Filename Float Lazy List Printf Scanf String Sys Tiles_apps Tiles_codegen Tiles_core Tiles_loop Tiles_poly Tiles_runtime Unix
