test/test_loop.ml: Alcotest Gen List Printf QCheck QCheck_alcotest Tiles_linalg Tiles_loop Tiles_poly Tiles_util
