test/test_poly.ml: Alcotest Array Fmt Gen List Printf QCheck QCheck_alcotest Tiles_linalg Tiles_poly Tiles_util
