module Rat = Tiles_rat.Rat

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal
let check = Alcotest.check rat

let test_normalisation () =
  check "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check "-6/4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.(check int) "den positive" 2 (Rat.den (Rat.make 1 (-2)));
  Alcotest.(check int) "num sign" (-1) (Rat.num (Rat.make 1 (-2)))

let test_arith () =
  check "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check "(1/2) / (1/4)" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check "inv -2/3" (Rat.make (-3) 2) (Rat.inv (Rat.make (-2) 3))

let test_div_zero () =
  Alcotest.check_raises "1/0" Division_by_zero (fun () ->
      ignore (Rat.make 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Rat.inv Rat.zero))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "floor 3" 3 (Rat.floor (Rat.of_int 3));
  Alcotest.(check int) "ceil 3" 3 (Rat.ceil (Rat.of_int 3))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Rat.(make 1 3 < make 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Rat.(make (-1) 2 < make 1 3);
  Alcotest.(check int) "sign" (-1) (Rat.sign (Rat.make (-1) 5));
  check "min" (Rat.make 1 3) (Rat.min (Rat.make 1 3) (Rat.make 1 2));
  check "max" (Rat.make 1 2) (Rat.max (Rat.make 1 3) (Rat.make 1 2))

let test_to_int () =
  Alcotest.(check int) "to_int 4/2" 2 (Rat.to_int_exn (Rat.make 4 2));
  Alcotest.check_raises "to_int 1/2"
    (Invalid_argument "Rat.to_int_exn: not an integer") (fun () ->
      ignore (Rat.to_int_exn (Rat.make 1 2)))

let small_rat =
  QCheck.map
    (fun (n, d) -> Rat.make n d)
    QCheck.(pair (int_range (-1000) 1000) (int_range 1 1000))

let prop_field_assoc =
  QCheck.Test.make ~name:"(a+b)+c = a+(b+c)" ~count:500
    (QCheck.triple small_rat small_rat small_rat) (fun (a, b, c) ->
      Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)))

let prop_mul_distrib =
  QCheck.Test.make ~name:"a*(b+c) = a*b + a*c" ~count:500
    (QCheck.triple small_rat small_rat small_rat) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_inverse =
  QCheck.Test.make ~name:"a * inv a = 1" ~count:500 small_rat (fun a ->
      QCheck.assume (Rat.sign a <> 0);
      Rat.equal (Rat.mul a (Rat.inv a)) Rat.one)

let prop_floor_le =
  QCheck.Test.make ~name:"floor a <= a <= ceil a" ~count:500 small_rat
    (fun a ->
      Rat.compare (Rat.of_int (Rat.floor a)) a <= 0
      && Rat.compare a (Rat.of_int (Rat.ceil a)) <= 0
      && Rat.ceil a - Rat.floor a <= 1)

let prop_compare_total =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair small_rat small_rat) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tiles_rat"
    [
      ( "rat",
        [
          Alcotest.test_case "normalisation" `Quick test_normalisation;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "div zero" `Quick test_div_zero;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_int" `Quick test_to_int;
          q prop_field_assoc;
          q prop_mul_distrib;
          q prop_inverse;
          q prop_floor_le;
          q prop_compare_total;
        ] );
    ]
