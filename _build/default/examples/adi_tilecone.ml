(* Deriving tilings from the tiling cone automatically.

   The paper hand-picks H_nr3 "parallel to the directions of the tiling
   cone" and confirms Hodzic–Shang: rows in the cone's interior are never
   schedule-optimal. Here we compute the cone of ADI with the
   double-description machinery, build a tiling from its extreme rays
   without any manual input, and check it coincides with the paper's nr3 —
   then compare all four variants on the simulated cluster.

   Run with:  dune exec examples/adi_tilecone.exe *)

module Adi = Tiles_apps.Adi
module Nest = Tiles_loop.Nest
module Cone = Tiles_poly.Cone
module Tiling = Tiles_core.Tiling
module Plan = Tiles_core.Plan
module Executor = Tiles_runtime.Executor
module Sim = Tiles_mpisim.Sim
module Rat = Tiles_rat.Rat
module Vec = Tiles_util.Vec
module Table = Tiles_util.Table

let () =
  let p = Adi.make ~t_steps:40 ~size:64 in
  let nest = Adi.nest p in
  let cone = Nest.tiling_cone nest in
  let rays = Cone.extreme_rays cone in
  Printf.printf "ADI dependence columns: %s\n"
    (Format.asprintf "%a" Tiles_loop.Dependence.pp nest.Nest.deps);
  Printf.printf "tiling cone extreme rays: %s\n"
    (String.concat "  " (List.map Vec.to_string rays));
  Printf.printf "(the paper's cone matrix C has rows (1,-1,-1), (0,1,0), (0,0,1))\n\n";

  (* build H from the rays, scaled by the experiment's factors *)
  let factors = [| 8; 16; 16 |] in
  let sorted_rays =
    (* put the time-like ray (positive first coordinate) first *)
    List.sort (fun a b -> compare b.(0) a.(0)) rays
  in
  let rows =
    List.mapi
      (fun i ray ->
        List.init 3 (fun k -> Rat.make ray.(k) factors.(i)))
      sorted_rays
  in
  let from_cone = Tiling.of_rows rows in
  let nr3 = Adi.nr3 ~x:factors.(0) ~y:factors.(1) ~z:factors.(2) in
  Printf.printf "tiling built from the cone rays equals the paper's nr3: %b\n\n"
    (Tiles_linalg.Ratmat.equal from_cone.Tiling.h nr3.Tiling.h);

  (* interior check: the rectangular time row e1 is strictly inside *)
  Printf.printf "rect row (1,0,0) lies in the cone's interior: %b\n"
    (Cone.contains_in_interior cone [| 1; 0; 0 |]);
  Printf.printf "nr3 row (1,-1,-1) lies on the cone surface:    %b\n\n"
    (Cone.contains cone [| 1; -1; -1 |]
    && not (Cone.contains_in_interior cone [| 1; -1; -1 |]));

  let net = Tiles_mpisim.Netmodel.fast_ethernet_cluster in
  let kernel = Adi.kernel p in
  let t = Table.create ~header:[ "variant"; "procs"; "sim time"; "speedup" ] in
  List.iter
    (fun (name, mk) ->
      let tiling = mk ~x:factors.(0) ~y:factors.(1) ~z:factors.(2) in
      let plan = Plan.make ~m:Adi.mapping_dim nest tiling in
      let r = Executor.run ~mode:Executor.Timing ~plan ~kernel ~net () in
      Table.add_row t
        [
          name;
          string_of_int (Plan.nprocs plan);
          Printf.sprintf "%.4f s" r.Executor.stats.Sim.completion;
          Printf.sprintf "%.2f" r.Executor.speedup;
        ])
    Adi.variants;
  Table.print t;
  print_endline
    "\nnr3 (rows on the tiling cone) wins, nr1/nr2 (one row moved to the\n\
     cone surface) sit between it and the rectangular tiling — the\n\
     Hodzic-Shang ordering of §4.4."
