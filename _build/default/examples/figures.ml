(* Reproduce the paper's conceptual diagrams (Figures 1-3) plus an
   execution Gantt chart, as SVG files.

   Run with:  dune exec examples/figures.exe [output-dir]  *)

module Svg = Tiles_viz.Svg
module Figures = Tiles_viz.Figures
module Polyhedron = Tiles_poly.Polyhedron
module Tiling = Tiles_core.Tiling
module Comm = Tiles_core.Comm
module Plan = Tiles_core.Plan
module Kernel = Tiles_runtime.Kernel
module Executor = Tiles_runtime.Executor
module Rat = Tiles_rat.Rat

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let save name svg =
    let path = Filename.concat dir name in
    Svg.save svg path;
    Printf.printf "wrote %s\n" path
  in
  (* an oblique 2-D tiling with non-trivial strides, like the paper's
     running example *)
  let tiling =
    Tiling.of_rows [ [ Rat.make 1 4; Rat.make 1 8 ]; [ Rat.zero; Rat.make 1 8 ] ]
  in
  let space = Polyhedron.box [ (0, 15); (0, 23) ] in

  (* Fig. 1 (left): the iteration space cut by the two hyperplane families *)
  save "fig1_tiled_space.svg" (Figures.tiled_space space tiling);

  (* Fig. 1 (right) / Fig. 2: the TTIS lattice with strides *)
  save "fig2_ttis.svg" (Figures.ttis tiling);

  (* Fig. 3: the LDS of one processor (3-tile chain) *)
  let deps =
    Tiles_loop.Dependence.of_vectors [ [| 1; 0 |]; [| 0; 1 |]; [| 1; 1 |] ]
  in
  let comm = Comm.make tiling deps ~m:0 in
  save "fig3_lds.svg" (Figures.lds tiling comm ~ntiles:3);

  (* execution Gantt of a small pipelined run *)
  let kernel =
    Kernel.make ~name:"pascal" ~dim:2
      ~reads:[ [| 1; 0 |]; [| 0; 1 |] ]
      ~boundary:(fun _ _ -> 1.)
      ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0 +. read 1 0)
      ()
  in
  let nest =
    Tiles_loop.Nest.make ~name:"pascal"
      ~space:(Polyhedron.box [ (0, 95); (0, 95) ])
      ~deps:(Kernel.deps kernel)
  in
  let plan = Plan.make nest (Tiling.rectangular [ 12; 12 ]) in
  let r =
    Executor.run ~mode:Executor.Timing ~trace:true ~plan ~kernel
      ~net:Tiles_mpisim.Netmodel.fast_ethernet_cluster ()
  in
  save "gantt_pascal.svg" (Figures.gantt r.Executor.stats);
  Printf.printf "(%d ranks, %d trace spans)\n"
    (Plan.nprocs plan)
    (List.length r.Executor.stats.Tiles_mpisim.Sim.trace)
