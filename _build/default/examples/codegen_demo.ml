(* End-to-end code generation: emit the data-parallel MPI C program for
   non-rectangularly tiled SOR (what the paper's tool produced) plus the
   sequential tiled program, and write both next to the vendored
   single-machine MPI stub with build instructions.

   Run with:  dune exec examples/codegen_demo.exe [output-dir]  *)

module Sor = Tiles_apps.Sor
module Plan = Tiles_core.Plan
module Seqgen = Tiles_codegen.Seqgen
module Mpigen = Tiles_codegen.Mpigen

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let p = Sor.make ~m_steps:12 ~size:16 in
  let nest = Sor.nest p in
  let tiling = Sor.nonrect ~x:6 ~y:7 ~z:4 in
  let plan = Plan.make ~m:Sor.mapping_dim nest tiling in
  let mpi =
    Mpigen.generate ~plan ~kernel:Sor.ckernel ~reads:Sor.skewed_reads
      ~skew:Sor.skew_matrix ()
  in
  let seq =
    Seqgen.generate ~plan ~kernel:Sor.ckernel ~reads:Sor.skewed_reads
      ~skew:Sor.skew_matrix ()
  in
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s (%d lines)\n" path
      (List.length (String.split_on_char '\n' contents))
  in
  write "sor_tiled_seq.c" seq;
  write "sor_tiled_mpi.c" mpi;
  Printf.printf "\nplan: %d MPI processes\n" (Plan.nprocs plan);
  print_endline "build and run them with:";
  print_endline "  gcc -O2 sor_tiled_seq.c -lm -o sor_seq && ./sor_seq";
  Printf.printf
    "  gcc -O2 -I vendor/mpistub sor_tiled_mpi.c vendor/mpistub/mpi_stub.c \
     -lm -o sor_mpi \\\n  && TILES_MPI_NPROCS=%d ./sor_mpi\n"
    (Plan.nprocs plan);
  print_endline "(both print the same checksum; any real MPI works too:";
  print_endline "  mpicc sor_tiled_mpi.c -lm && mpirun -np N ./a.out)"
