examples/sor_pipeline.mli:
