examples/adi_tilecone.mli:
