examples/quickstart.mli:
