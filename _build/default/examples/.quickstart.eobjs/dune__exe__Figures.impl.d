examples/figures.ml: Array Filename List Printf Sys Tiles_core Tiles_loop Tiles_mpisim Tiles_poly Tiles_rat Tiles_runtime Tiles_viz
