examples/quickstart.ml: Array Format Printf Tiles_core Tiles_loop Tiles_mpisim Tiles_poly Tiles_rat Tiles_runtime Tiles_util
