examples/sor_pipeline.ml: Format List Printf Tiles_apps Tiles_core Tiles_loop Tiles_mpisim Tiles_runtime Tiles_util
