examples/adi_tilecone.ml: Array Format List Printf String Tiles_apps Tiles_core Tiles_linalg Tiles_loop Tiles_mpisim Tiles_poly Tiles_rat Tiles_runtime Tiles_util
