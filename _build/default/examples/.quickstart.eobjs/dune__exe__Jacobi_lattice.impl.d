examples/jacobi_lattice.ml: Array Printf Tiles_apps Tiles_core Tiles_linalg Tiles_loop Tiles_mpisim Tiles_runtime Tiles_util
