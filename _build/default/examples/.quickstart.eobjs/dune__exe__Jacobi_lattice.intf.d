examples/jacobi_lattice.mli:
