examples/figures.mli:
