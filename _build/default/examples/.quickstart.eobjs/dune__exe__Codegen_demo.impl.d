examples/codegen_demo.ml: Array Filename List Printf String Sys Tiles_apps Tiles_codegen Tiles_core
