# CI smoke test for `tilec analyze`: runs the causal critical-path
# analysis on all three apps (sim backend, virtual time, deterministic)
# and asserts the core invariants the paper-facing numbers rest on:
#
#   (a) the extracted path is causal and complete -- its segments sum to
#       the completion time within 1e-9 (coverage >= 95% is the CI gate;
#       the sim backend achieves 100%),
#   (b) path length >= max rank busy time (the causal path dominates the
#       per-rank busy proxy),
#   (c) the Chrome artifact round-trips: --from on the emitted trace
#       reproduces the same path length, and the trace carries a
#       flow-event pair (ph "s"/"f") for every crossed message edge,
#   (d) the SVG timeline highlights the path.
#
# Then a bounded-memory scale check: a >=1024-rank Jacobi sim traced
# with the streaming recorder must fit under a hard RSS ceiling --
# O(ranks) memory, independent of the span count.
#
# Usage: python3 scripts/analyze_smoke.py [path/to/tilec.exe]
# Writes analyze-artifacts/{<app>.json,<app>-trace.json,<app>.svg,
# stream-1219.json,stream-1219-contended.json}.
import json, os, resource, subprocess, sys

tilec = sys.argv[1] if len(sys.argv) > 1 else "./_build/default/bin/tilec.exe"
os.makedirs("analyze-artifacts", exist_ok=True)

RSS_CEILING_MB = 512
MIN_COVERAGE = 0.95

def run(args):
    r = subprocess.run([tilec] + args, capture_output=True, text=True)
    assert r.returncode == 0, (args, r.stdout, r.stderr)
    return r.stdout

APPS = {
    "sor": ["-M", "12", "-N", "16", "-x", "3", "-y", "4"],
    "jacobi": ["-t", "12", "-n", "16", "-x", "3", "-y", "4", "-z", "4"],
    # ADI's non-rectangular tilings are named nr1..nr3, not "nonrect"
    "adi": ["--variant", "nr1", "-t", "12", "-n", "16",
            "-x", "3", "-y", "4", "-z", "4"],
}

for app, size in APPS.items():
    trace = f"analyze-artifacts/{app}-trace.json"
    svg = f"analyze-artifacts/{app}.svg"
    base = ["analyze", "--app", app, "--backend", "sim"] + size
    rep = json.loads(run(base + ["--json", "--out", trace, "--svg", svg]))
    with open(f"analyze-artifacts/{app}.json", "w") as f:
        json.dump(rep, f, indent=2)

    assert rep["coverage"] >= MIN_COVERAGE, (app, rep["coverage"])
    gap = abs(rep["path_length_s"] - rep["completion_s"])
    assert gap <= 1e-9, (app, gap)
    assert rep["path_length_s"] >= rep["max_rank_busy_s"] - 1e-12, app
    ks = rep["kind_seconds"]
    assert abs(sum(ks.values()) - rep["path_length_s"]) <= 1e-9, (app, ks)

    # the Chrome artifact: flow events for the crossed edges, and
    # reading it back reproduces the identical path
    d = json.load(open(trace))
    flows = [e for e in d["traceEvents"] if e.get("ph") in ("s", "f")]
    sends = [e for e in flows if e["ph"] == "s"]
    assert sends and len(flows) == 2 * len(sends), (app, len(flows))
    assert all(e["cat"] == "tiles-flow" for e in flows), app
    assert len(sends) >= rep["edges_crossed"], (app, len(sends))
    rep2 = json.loads(run(["analyze", "--from", trace, "--json"]))
    assert abs(rep2["path_length_s"] - rep["path_length_s"]) <= 1e-12, app
    assert rep2["edges_crossed"] == rep["edges_crossed"], app

    assert "critical path" in open(svg).read(), svg
    print(f"{app}: path {rep['path_length_s']:.6f}s "
          f"coverage {rep['coverage']:.3f} edges {rep['edges_crossed']}")

# scale: >=1024 sim ranks under the streaming recorder, hard RSS ceiling
stream = json.loads(run(["analyze", "--app", "jacobi", "--backend", "sim",
                         "-t", "24", "-n", "256",
                         "-x", "3", "-y", "8", "-z", "8",
                         "--stream", "--json"]))
with open("analyze-artifacts/stream-1219.json", "w") as f:
    json.dump(stream, f, indent=2)
stats = stream["stats"]
assert stats["nprocs"] >= 1024, stats["nprocs"]
assert stats["completion_s"] > 0
assert stream["longest_waits"], "streaming recorder kept no waits"
# same scale under the contended NIC model: single send/recv lanes per
# rank must produce attributed queueing (nic_queue_s is only emitted
# when nonzero), and the streaming recorder must stay under the same
# RSS ceiling -- contention adds per-rank lane state, not per-span state
cont = json.loads(run(["analyze", "--app", "jacobi", "--backend", "sim",
                       "-t", "24", "-n", "256",
                       "-x", "3", "-y", "8", "-z", "8",
                       "--stream", "--net", "contended", "--json"]))
with open("analyze-artifacts/stream-1219-contended.json", "w") as f:
    json.dump(cont, f, indent=2)
cstats = cont["stats"]
assert cstats["nprocs"] == stats["nprocs"], cstats["nprocs"]
assert cstats.get("nic_queue_s", 0.0) > 0.0, "contended sim saw no queueing"
# serializing NICs can only delay completion relative to alpha-beta
assert cstats["completion_s"] >= stats["completion_s"] - 1e-12

# ru_maxrss is the peak of any child on Linux (KiB); every tilec run
# above is a child of this script, and the 1219-rank sims dwarf the rest
peak_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
assert peak_mb < RSS_CEILING_MB, f"peak child RSS {peak_mb:.0f} MB"
print(f"stream: {stats['nprocs']} ranks, "
      f"{stats['messages']} messages, peak child RSS {peak_mb:.0f} MB")
print(f"contended: completion {cstats['completion_s']:.6f}s "
      f"(alpha-beta {stats['completion_s']:.6f}s), "
      f"nic queueing {cstats['nic_queue_s']:.3f}s across ranks")
print("analyze smoke OK")
