# CI smoke test for `tilec serve`: drives the daemon over a pipe with a
# mixed batch containing duplicates, then asserts that (a) the duplicate
# burst was coalesced onto a single compile with bit-identical payloads,
# (b) a repeat request after the burst hits the plan cache, and (c) the
# metrics snapshot reports both along with per-class latency percentiles.
#
# Determinism: the daemon runs with a single worker and the batch leads
# with a tune job that occupies that worker for hundreds of
# milliseconds, so the identical plan requests queued behind it are all
# read -- and coalesced -- before any of them can execute.
#
# Usage: python3 scripts/serve_smoke.py [path/to/tilec.exe]
# Writes serve-artifacts/{final-metrics,latency}.json.
import json, subprocess, sys

cmd = sys.argv[1:] or ["./_build/default/bin/tilec.exe"]
p = subprocess.Popen(
    cmd + ["serve", "--workers", "1", "--capacity", "32",
           "--metrics-out", "serve-artifacts/final-metrics.json"],
    stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

def send(obj):
    p.stdin.write(json.dumps(obj) + "\n")
    p.stdin.flush()

def read_until(ids):
    got = {}
    while ids - got.keys():
        line = p.stdout.readline()
        assert line, "daemon closed stdout early"
        r = json.loads(line)
        got[r.get("id", "")] = r
    return got

plan = {"op": "plan", "app": "sor", "size1": 24, "size2": 32,
        "tile": [6, 8, 8]}
# phase 1: the tune job occupies the single worker for hundreds of ms,
# so the identical plan burst behind it is read and coalesced before
# any of it can execute
send({"id": "warm", "op": "tune", "app": "adi", "variant": "nr1",
      "size1": 10, "size2": 12, "procs": 4, "factors": [2, 3]})
burst = [f"b{i}" for i in range(5)]
for i in burst:
    send(dict(plan, id=i))
r1 = read_until(set(burst) | {"warm"})
for i in burst + ["warm"]:
    assert r1[i]["status"] == "ok", r1[i]
labels = [r1[i]["cache"] for i in burst]
assert labels.count("miss") == 1, labels
assert labels.count("coalesced") == len(burst) - 1, labels
payloads = set()
for i in burst:
    r = dict(r1[i])
    for k in ("id", "cache", "queued_s", "service_s"):
        r.pop(k, None)
    payloads.add(json.dumps(r, sort_keys=True))
assert len(payloads) == 1, "coalesced payloads differ"

# phase 2: the same configuration again, after phase 1 fully completed
# -> a guaranteed plan-cache hit, no coalescing involved
send(dict(plan, id="again"))
r2 = read_until({"again"})
assert r2["again"]["status"] == "ok"
assert r2["again"]["cache"] == "hit", r2["again"]

send({"id": "m", "op": "metrics"})
m = read_until({"m"})["m"]["metrics"]
assert m["coalesce"]["batched"] == len(burst) - 1, m["coalesce"]
assert m["plan_cache"]["hits"] >= 1, m["plan_cache"]
assert m["queue"]["rejected_full"] == 0, m["queue"]
cls = m["jobs"]["classes"]
assert "plan" in cls and "tune" in cls, cls.keys()
for c in cls.values():
    assert c["total_s"]["p50"] >= 0 and c["total_s"]["p99"] >= 0

send({"op": "shutdown"})
out, _ = p.communicate(timeout=120)
assert p.returncode == 0, p.returncode
final = [json.loads(l) for l in out.splitlines() if l.strip()]
assert any(r.get("op") == "shutdown" for r in final), "no shutdown ack"

with open("serve-artifacts/latency.json", "w") as f:
    json.dump(m, f, indent=2)
print("serve smoke OK: coalesced", m["coalesce"]["batched"],
      "cache hits", m["plan_cache"]["hits"])
