#!/usr/bin/env python3
"""Fail when walker/LDS addressing changed without re-recorded artifacts.

The perf gate compares runs against committed baselines, and the bench
report in BENCH_kernels.json is the committed record of walker
throughput. Both describe a specific memory layout and row-execution
scheme: if a change touches how LDS cells are addressed or how rows are
walked, the committed numbers describe a binary that no longer exists,
and the gate would silently compare against a different layout. This
check forces the two to move together in the same change.

Usage: check_baselines.py [BASE]

BASE is the commit to diff HEAD against (a PR base SHA or push-before
SHA). When absent, unresolvable, or all-zero (first push), the check
falls back to the merge base with origin/main, then to HEAD^.
"""

import subprocess
import sys

# Files that define LDS cell addressing or row execution — including
# the two-level subtile decomposition (walker.ml) and how the subtile
# shape is baked into generated row kernels (rowgen.ml, native_kernel.ml)
# and threaded into rank programs (protocol.ml, executor entry points).
# A change to any of these invalidates the committed perf artifacts.
WATCHED = {
    "lib/runtime/walker.ml",
    "lib/runtime/kernel.ml",
    "lib/runtime/native_kernel.ml",
    "lib/runtime/native_stubs.c",
    "lib/runtime/protocol.ml",
    "lib/runtime/executor.ml",
    "lib/runtime/seq_exec.ml",
    "lib/runtime/shm_executor.ml",
    "lib/codegen/rowgen.ml",
    "lib/core/lds.ml",
    "lib/util/fbuf.ml",
}

# Files that define the simulator's network timing model. A change here
# moves every simulated completion time, so the committed perf baselines
# (recorded under a specific model) must be re-recorded in the same
# change; BENCH_kernels.json measures wall-clock walker throughput and
# is unaffected.
NET_WATCHED = {
    "lib/mpisim/netmodel.ml",
    "lib/mpisim/sim.ml",
}


def rev_ok(rev):
    return (
        subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", rev + "^{commit}"],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        ).returncode
        == 0
    )


def resolve_base(arg):
    if arg and not set(arg) <= {"0"} and rev_ok(arg):
        return arg
    mb = subprocess.run(
        ["git", "merge-base", "origin/main", "HEAD"],
        capture_output=True,
        text=True,
    )
    if mb.returncode == 0:
        base = mb.stdout.strip()
        head = subprocess.check_output(
            ["git", "rev-parse", "HEAD"], text=True
        ).strip()
        if base != head:
            return base
    return "HEAD^" if rev_ok("HEAD^") else None


def main():
    arg = sys.argv[1] if len(sys.argv) > 1 else None
    base = resolve_base(arg)
    if base is None:
        print("baseline check: no base commit to diff against; skipping")
        return 0
    files = [
        f
        for f in subprocess.check_output(
            ["git", "diff", "--name-only", f"{base}...HEAD"], text=True
        ).splitlines()
        if f
    ]
    baselines_touched = any(f.startswith("perf/baselines/") for f in files)
    rc = 0

    hot = sorted(set(files) & WATCHED)
    if not hot:
        print("baseline check: no walker-addressing files changed")
    else:
        missing = []
        if not baselines_touched:
            missing.append("perf/baselines/*.json (tilec perf ... --record)")
        if "BENCH_kernels.json" not in files:
            missing.append("BENCH_kernels.json (bench --json kernels)")
        if missing:
            print(f"walker-addressing files changed vs {base}:")
            for f in hot:
                print(f"  {f}")
            print("but these committed artifacts were not re-recorded:")
            for m in missing:
                print(f"  {m}")
            rc = 1
        else:
            print(
                f"baseline check: {len(hot)} addressing file(s) changed, "
                "perf baselines and BENCH_kernels.json re-recorded alongside"
            )

    net_hot = sorted(set(files) & NET_WATCHED)
    if not net_hot:
        print("baseline check: no network-model files changed")
    elif not baselines_touched:
        print(f"network-model files changed vs {base}:")
        for f in net_hot:
            print(f"  {f}")
        print("but no perf/baselines/*.json was re-recorded alongside")
        print("(simulated completions moved; run tilec perf ... --record)")
        rc = 1
    else:
        print(
            f"baseline check: {len(net_hot)} network-model file(s) changed, "
            "perf baselines re-recorded alongside"
        )
    return rc


if __name__ == "__main__":
    sys.exit(main())
