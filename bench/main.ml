(* Benchmark harness: regenerates every figure of the paper's evaluation
   section (Figures 5-10), the §4.4 aggregate improvements, the §4.1-4.3
   analytic schedule gaps, two ablations, and Bechamel micro-benchmarks of
   the compiler's hot paths.

   Usage:
     bench/main.exe                 all figures + summary + analytic
     bench/main.exe fig5 ... fig10  individual figures
     bench/main.exe summary | analytic | ablation-net | ablation-map
     bench/main.exe ablation-tune   autotuner predictor vs simulator ranks
     bench/main.exe trace           unified span metrics, sim vs shm domains
     bench/main.exe analyze         causal critical-path split, rect vs nonrect
                                    Jacobi at 58 and 1219 sim ranks
     bench/main.exe perf            run distributions + analytic-model residuals
     bench/main.exe micro           Bechamel micro-benchmarks
     bench/main.exe kernels         walker throughput: reference vs strength vs fast vs native
     bench/main.exe serve           compile-service load test: throughput,
                                    per-class latency, coalesce/cache counters
     bench/main.exe everything      all of the above
     bench/main.exe --json ...      also write each target's tables (plus any
                                    embedded aggregate statistics records) to
                                    BENCH_<target>.json *)

module Table = Tiles_util.Table
module Json = Tiles_util.Json
module Netmodel = Tiles_mpisim.Netmodel
module E = Tiles_apps.Experiment
module Plan = Tiles_core.Plan
module Schedule = Tiles_core.Schedule
module Tiling = Tiles_core.Tiling
module Executor = Tiles_runtime.Executor
module Sim = Tiles_mpisim.Sim

let net = Netmodel.fast_ethernet_cluster

let pf fmt = Printf.printf fmt

(* tables printed by the current target, collected for --json output *)
let collected : Table.t list ref = ref []

let emit t =
  Table.print t;
  collected := t :: !collected

(* raw JSON records (e.g. aggregate run statistics) riding along in the
   current target's BENCH_<target>.json under "stats" *)
let collected_json : (string * Json.t) list ref = ref []

let emit_json key j = collected_json := (key, j) :: !collected_json

let table_json t =
  let row_json cells = Json.List (List.map (fun c -> Json.Str c) cells) in
  Json.Obj
    [ ("header", row_json (Table.header t));
      ("rows", Json.List (List.map row_json (Table.rows t))) ]

(* every artifact carries its provenance: CI uploads these files and a
   downloaded BENCH_*.json must say what produced it *)
let bench_metadata ~target =
  Json.Obj
    [
      ("tool", Json.Str "bench");
      ("tilec_version", Json.Str Tiles_obs.Runmeta.version);
      ("target", Json.Str target);
      ("nprocs", Json.Int 16);
      ("netmodel", Json.Str "fast_ethernet_cluster");
      ("netmodel_latency_s", Json.Float net.Netmodel.latency);
      ("netmodel_bandwidth_Bps", Json.Float net.Netmodel.bandwidth);
      ("netmodel_flop_time_s", Json.Float net.Netmodel.flop_time);
    ]

let write_json ~target =
  let file = Printf.sprintf "BENCH_%s.json" target in
  let json =
    Json.Obj
      (("target", Json.Str target)
       :: ("metadata", bench_metadata ~target)
       :: ("tables", Json.List (List.rev_map table_json !collected))
       :: (match !collected_json with
          | [] -> []
          | kvs -> [ ("stats", Json.Obj (List.rev kvs)) ]))
  in
  let oc = open_out file in
  output_string oc (Json.to_string ~indent:2 json);
  output_char oc '\n';
  close_out oc;
  pf "[%s written]\n" file

let sor_spaces = [ (100, 100); (100, 200); (200, 200); (100, 400) ]
let jacobi_spaces = [ (50, 100); (100, 100); (50, 200); (100, 200) ]
let adi_spaces = [ (100, 128); (100, 256); (200, 256); (100, 512) ]
let sor_factors = [ 2; 4; 6; 10; 16; 25 ]
let jacobi_factors = [ 2; 3; 5; 10; 25 ]
let adi_factors = [ 4; 10; 25; 50 ]

let fmt_speedup r = Printf.sprintf "%.2f" r.E.speedup

(* ---------------- maximum-speedup figures (5 / 7 / 9) ---------------- *)

let max_speedup_figure ~title ~specs =
  pf "\n=== %s ===\n" title;
  let variants =
    match specs with
    | [] -> []
    | (_, s) :: _ -> List.map fst s.E.variants
  in
  let t = Table.create ~header:(("iteration space" :: variants) @ [ "procs"; "best nr gain" ]) in
  List.iter
    (fun (label, spec) ->
      let runs = E.sweep spec ~net in
      let best = E.best_by_variant runs in
      let cells =
        List.map
          (fun v ->
            match List.assoc_opt v best with
            | Some r -> fmt_speedup r
            | None -> "-")
          variants
      in
      let gain =
        match List.assoc_opt "rect" best with
        | Some rect ->
          let best_nr =
            List.fold_left
              (fun acc (v, r) ->
                if v = "rect" then acc
                else match acc with
                  | Some b when b.E.speedup >= r.E.speedup -> acc
                  | _ -> Some r)
              None best
          in
          (match best_nr with
          | Some nr ->
            Printf.sprintf "%+.1f%%"
              (100. *. (nr.E.speedup -. rect.E.speedup) /. rect.E.speedup)
          | None -> "-")
        | None -> "-"
      in
      Table.add_row t ((label :: cells) @ [ string_of_int spec.E.procs; gain ]))
    specs;
  emit t

let fig5 () =
  let specs =
    List.map
      (fun (m, n) ->
        (Printf.sprintf "M=%d N=%d" m n,
         E.sor ~factors:sor_factors ~m_steps:m ~size:n ()))
      sor_spaces
  in
  max_speedup_figure
    ~title:"Figure 5 — SOR: maximum speedups per iteration space (16 nodes)"
    ~specs

let fig7 () =
  let specs =
    List.map
      (fun (t, s) ->
        (Printf.sprintf "T=%d I=J=%d" t s,
         E.jacobi ~factors:jacobi_factors ~t_steps:t ~size:s ()))
      jacobi_spaces
  in
  max_speedup_figure
    ~title:"Figure 7 — Jacobi: maximum speedups per iteration space (16 nodes)"
    ~specs

let fig9 () =
  let specs =
    List.map
      (fun (t, n) ->
        (Printf.sprintf "T=%d N=%d" t n,
         E.adi ~factors:adi_factors ~t_steps:t ~size:n ()))
      adi_spaces
  in
  max_speedup_figure
    ~title:
      "Figure 9 — ADI: maximum speedups per iteration space (rect vs nr1/nr2/nr3)"
    ~specs

(* ---------------- tile-size sweep figures (6 / 8 / 10) ---------------- *)

let sweep_figure ~title ~spec ~factor_label =
  pf "\n=== %s ===\n" title;
  let runs = E.sweep spec ~net in
  let variants = List.map fst spec.E.variants in
  let t =
    Table.create
      ~header:
        ((factor_label :: "tile size" :: variants)
        @ [ "steps r/nr"; "nr gain" ])
  in
  List.iter
    (fun f ->
      let at v =
        List.find_opt (fun r -> r.E.factor = f && r.E.variant = v) runs
      in
      let cells =
        List.map (fun v -> match at v with Some r -> fmt_speedup r | None -> "-")
          variants
      in
      let tile =
        match List.find_opt (fun r -> r.E.factor = f) runs with
        | Some r -> string_of_int r.E.tile_size
        | None -> "-"
      in
      let steps =
        match (at "rect", at (List.nth variants (List.length variants - 1))) with
        | Some a, Some b -> Printf.sprintf "%d/%d" a.E.steps b.E.steps
        | _ -> "-"
      in
      let gain =
        match at "rect" with
        | Some rect ->
          let best =
            List.fold_left
              (fun acc r ->
                if r.E.factor = f && r.E.variant <> "rect" then
                  match acc with
                  | Some b when b.E.speedup >= r.E.speedup -> acc
                  | _ -> Some r
                else acc)
              None runs
          in
          (match best with
          | Some b ->
            Printf.sprintf "%+.1f%%"
              (100. *. (b.E.speedup -. rect.E.speedup) /. rect.E.speedup)
          | None -> "-")
        | None -> "-"
      in
      Table.add_row t ((string_of_int f :: tile :: cells) @ [ steps; gain ]))
    spec.E.factors;
  emit t

let fig6 () =
  sweep_figure
    ~title:"Figure 6 — SOR: speedups for various tile sizes (M=100, N=200)"
    ~spec:(E.sor ~factors:[ 2; 3; 4; 6; 8; 10; 16; 25 ] ~m_steps:100 ~size:200 ())
    ~factor_label:"z"

let fig8 () =
  sweep_figure
    ~title:"Figure 8 — Jacobi: speedups for various tile sizes (T=50, I=J=100)"
    ~spec:(E.jacobi ~factors:[ 1; 2; 3; 5; 8; 10; 15; 25 ] ~t_steps:50 ~size:100 ())
    ~factor_label:"x"

let fig10 () =
  sweep_figure
    ~title:"Figure 10 — ADI: speedups for various tile sizes (T=100, N=256)"
    ~spec:(E.adi ~factors:[ 2; 4; 6; 10; 16; 25; 50 ] ~t_steps:100 ~size:256 ())
    ~factor_label:"x"

(* ---------------- §4.4 aggregate ---------------- *)

let summary () =
  pf "\n=== Summary (§4.4) — average non-rectangular speedup improvement ===\n";
  pf "(\"over sweep\" averages the gain at every tile size; \"at best tile\"\n";
  pf " compares the per-variant maxima, which is closer to how the paper's\n";
  pf " figure-level numbers read. The gain grows with tile size, so the\n";
  pf " absolute percentage is sensitive to the — unpublished — factor sets.)\n";
  let t =
    Table.create
      ~header:
        [ "algorithm"; "avg over sweep"; "at best tile"; "paper reports"; "spaces" ]
  in
  let avg name paper specs =
    let runs_per_spec = List.map (fun spec -> E.sweep spec ~net) specs in
    let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
    let sweep_mean = mean (List.map E.improvement_pct runs_per_spec) in
    let best_gain runs =
      let best = E.best_by_variant runs in
      match List.assoc_opt "rect" best with
      | None -> 0.
      | Some rect ->
        let nr =
          List.fold_left
            (fun acc (v, r) ->
              if v = "rect" then acc else Float.max acc r.E.speedup)
            0. best
        in
        100. *. (nr -. rect.E.speedup) /. rect.E.speedup
    in
    let best_mean = mean (List.map best_gain runs_per_spec) in
    Table.add_row t
      [
        name;
        Printf.sprintf "%+.1f%%" sweep_mean;
        Printf.sprintf "%+.1f%%" best_mean;
        paper;
        string_of_int (List.length specs);
      ]
  in
  avg "SOR" "+17.3%"
    (List.map (fun (m, n) -> E.sor ~factors:sor_factors ~m_steps:m ~size:n ()) sor_spaces);
  avg "Jacobi" "+9.1%"
    (List.map (fun (t, s) -> E.jacobi ~factors:jacobi_factors ~t_steps:t ~size:s ()) jacobi_spaces);
  avg "ADI" "+10.1%"
    (List.map (fun (t, n) -> E.adi ~factors:adi_factors ~t_steps:t ~size:n ()) adi_spaces);
  emit t

(* ---------------- §4.1-4.3 analytic schedule gaps ---------------- *)

let analytic () =
  pf "\n=== Analytic check — linear-schedule step of j_max (Π·⌊H·j_max⌋) ===\n";
  pf "paper: t_r − t_nr = M/z (SOR), (T+I)/2x (Jacobi), N/y + N/z (ADI nr3)\n";
  let t =
    Table.create
      ~header:[ "algorithm"; "config"; "t_r"; "t_nr"; "measured gap"; "predicted" ]
  in
  (* SOR, M=100 N=200, x=50 y=34 (the fig6 grid), sweep z *)
  let p = Tiles_apps.Sor.make ~m_steps:100 ~size:200 in
  let nest = Tiles_apps.Sor.nest p in
  List.iter
    (fun z ->
      let tr =
        Schedule.last_point_step
          (Plan.make ~m:2 nest (Tiles_apps.Sor.rect ~x:50 ~y:34 ~z))
      in
      let tnr =
        Schedule.last_point_step
          (Plan.make ~m:2 nest (Tiles_apps.Sor.nonrect ~x:50 ~y:34 ~z))
      in
      Table.add_row t
        [
          "SOR"; Printf.sprintf "z=%d" z; string_of_int tr; string_of_int tnr;
          string_of_int (tr - tnr);
          Printf.sprintf "M/z = %d" (100 / z);
        ])
    [ 4; 10; 25 ];
  let p = Tiles_apps.Jacobi.make ~t_steps:50 ~size:100 in
  let nest = Tiles_apps.Jacobi.nest p in
  List.iter
    (fun x ->
      let tr =
        Schedule.last_point_step
          (Plan.make ~m:0 nest (Tiles_apps.Jacobi.rect ~x ~y:38 ~z:38))
      in
      let tnr =
        Schedule.last_point_step
          (Plan.make ~m:0 nest (Tiles_apps.Jacobi.nonrect ~x ~y:38 ~z:38))
      in
      Table.add_row t
        [
          "Jacobi"; Printf.sprintf "x=%d" x; string_of_int tr; string_of_int tnr;
          string_of_int (tr - tnr);
          Printf.sprintf "(T+I)/2x = %d" ((50 + 100) / (2 * x));
        ])
    [ 2; 5; 10 ];
  let p = Tiles_apps.Adi.make ~t_steps:100 ~size:256 in
  let nest = Tiles_apps.Adi.nest p in
  List.iter
    (fun x ->
      let tr =
        Schedule.last_point_step
          (Plan.make ~m:0 nest (Tiles_apps.Adi.rect ~x ~y:64 ~z:64))
      in
      let tnr =
        Schedule.last_point_step
          (Plan.make ~m:0 nest (Tiles_apps.Adi.nr3 ~x ~y:64 ~z:64))
      in
      Table.add_row t
        [
          "ADI/nr3"; Printf.sprintf "x=%d" x; string_of_int tr; string_of_int tnr;
          string_of_int (tr - tnr);
          (* the paper writes N/y + N/z assuming x = y = z; with our grid
             the two subtracted row-0 entries each contribute N/x *)
          Printf.sprintf "2N/x = %d" (2 * 256 / x);
        ])
    [ 4; 10; 25 ];
  emit t

(* ---------------- ablations ---------------- *)

let ablation_net () =
  pf "\n=== Ablation — computation/communication ratio vs non-rect gain ===\n";
  pf "(SOR M=100 N=200, z=6; ratio scales per-point compute cost)\n";
  let spec = E.sor ~factors:[ 6 ] ~m_steps:100 ~size:200 () in
  let t =
    Table.create ~header:[ "comp/comm ratio"; "rect"; "nonrect"; "nr gain" ]
  in
  List.iter
    (fun ratio ->
      let net = Netmodel.with_ratio net ratio in
      let rect = E.run_one spec ~net ~variant:"rect" ~factor:6 in
      let nr = E.run_one spec ~net ~variant:"nonrect" ~factor:6 in
      Table.add_row t
        [
          Printf.sprintf "%.2fx" ratio;
          fmt_speedup rect;
          fmt_speedup nr;
          Printf.sprintf "%+.1f%%"
            (100. *. (nr.E.speedup -. rect.E.speedup) /. rect.E.speedup);
        ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  emit t

let ablation_map () =
  pf "\n=== Ablation — mapping-dimension choice (ADI T=100 N=256, nr3, x=10) ===\n";
  pf "(§3.1: map along the dimension with the maximum trip count)\n";
  let p = Tiles_apps.Adi.make ~t_steps:100 ~size:256 in
  let nest = Tiles_apps.Adi.nest p in
  let kernel = Tiles_apps.Adi.kernel p in
  let t = Table.create ~header:[ "mapping dim"; "procs"; "speedup"; "messages" ] in
  List.iter
    (fun m ->
      match
        let tiling = Tiles_apps.Adi.nr3 ~x:10 ~y:64 ~z:64 in
        let plan = Plan.make ~m nest tiling in
        (plan, Executor.run ~mode:Executor.Timing ~plan ~kernel ~net ())
      with
      | plan, r ->
        Table.add_row t
          [
            string_of_int m;
            string_of_int (Plan.nprocs plan);
            Printf.sprintf "%.2f" r.Executor.speedup;
            string_of_int r.Executor.stats.Sim.messages;
          ]
      | exception e ->
        Table.add_row t [ string_of_int m; "-"; Printexc.to_string e ])
    [ 0; 1; 2 ];
  emit t

let ablation_overlap () =
  pf "\n=== Ablation — §5 future work: computation/communication overlap ===\n";
  pf "(non-blocking sends; SOR M=100 N=200 and ADI T=100 N=256)\n";
  let t =
    Table.create
      ~header:
        [ "experiment"; "variant"; "blocking"; "overlapped"; "overlap gain";
          "busy% blk"; "busy% ovl" ]
  in
  let row label spec variant factor =
    let mk overlap =
      let tiling = (List.assoc variant spec.E.variants) factor in
      let plan = Plan.make ~m:spec.E.m spec.E.nest tiling in
      Executor.run ~mode:Executor.Timing ~overlap ~trace:true ~plan
        ~kernel:spec.E.kernel ~net ()
    in
    let b = mk false and o = mk true in
    let eff r = Tiles_mpisim.Trace.efficiency r.Executor.stats in
    Table.add_row t
      [
        label; variant;
        Printf.sprintf "%.2f" b.Executor.speedup;
        Printf.sprintf "%.2f" o.Executor.speedup;
        Printf.sprintf "%+.1f%%"
          (100. *. (o.Executor.speedup -. b.Executor.speedup)
           /. b.Executor.speedup);
        Printf.sprintf "%.0f%%" (100. *. eff b);
        Printf.sprintf "%.0f%%" (100. *. eff o);
      ]
  in
  let sor = E.sor ~factors:[ 6 ] ~m_steps:100 ~size:200 () in
  row "SOR z=6" sor "rect" 6;
  row "SOR z=6" sor "nonrect" 6;
  let adi = E.adi ~factors:[ 10 ] ~t_steps:100 ~size:256 () in
  row "ADI x=10" adi "rect" 10;
  row "ADI x=10" adi "nr3" 10;
  emit t;
  (* the same ablation on the real shm backend: wall clock, so smaller
     configurations that fit the host's cores, and the busy fractions
     come from the unified span recorder instead of the simulator *)
  pf "\nshm backend (real domains, wall-clock; host-dependent):\n";
  let module Shm_executor = Tiles_runtime.Shm_executor in
  let ts =
    Table.create
      ~header:
        [ "experiment"; "variant"; "blocking"; "overlapped"; "overlap gain";
          "busy% blk"; "busy% ovl" ]
  in
  let shm_row label spec variant factor =
    let mk overlap =
      let tiling = (List.assoc variant spec.E.variants) factor in
      let plan = Plan.make ~m:spec.E.m spec.E.nest tiling in
      Shm_executor.run ~trace:true ~overlap ~plan ~kernel:spec.E.kernel ()
    in
    let b = mk false and o = mk true in
    let busy (r : Shm_executor.result) =
      r.Shm_executor.stats.Tiles_obs.Stats.mean_busy_fraction
    in
    Table.add_row ts
      [
        label; variant;
        Printf.sprintf "%.2f" b.Shm_executor.wall_speedup;
        Printf.sprintf "%.2f" o.Shm_executor.wall_speedup;
        Printf.sprintf "%+.1f%%"
          (100.
           *. (o.Shm_executor.wall_speedup -. b.Shm_executor.wall_speedup)
           /. b.Shm_executor.wall_speedup);
        Printf.sprintf "%.0f%%" (100. *. busy b);
        Printf.sprintf "%.0f%%" (100. *. busy o);
      ]
  in
  let sor_shm = E.sor ~factors:[ 6 ] ~m_steps:24 ~size:128 () in
  shm_row "SOR z=6 (M=24 N=128)" sor_shm "rect" 6;
  shm_row "SOR z=6 (M=24 N=128)" sor_shm "nonrect" 6;
  let adi_shm = E.adi ~factors:[ 8 ] ~t_steps:24 ~size:96 () in
  shm_row "ADI x=8 (T=24 N=96)" adi_shm "rect" 8;
  shm_row "ADI x=8 (T=24 N=96)" adi_shm "nr3" 8;
  emit ts

let model () =
  pf "\n=== Model — Hodzic–Shang analytic completion time vs simulation ===\n";
  pf "(SOR M=100 N=200, rect tiling; the model ranks tile sizes and finds\n";
  pf " the speedup peak without running anything)\n";
  let module Model = Tiles_runtime.Model in
  let spec = E.sor ~factors:[ 2; 3; 4; 6; 8; 10; 16; 25 ] ~m_steps:100 ~size:200 () in
  let t =
    Table.create
      ~header:[ "z"; "predicted time"; "simulated time"; "predicted speedup"; "measured speedup" ]
  in
  let mk f = Plan.make ~m:spec.E.m spec.E.nest ((List.assoc "rect" spec.E.variants) f) in
  List.iter
    (fun f ->
      let est = Model.predict (mk f) ~net in
      let r = E.run_one spec ~net ~variant:"rect" ~factor:f in
      Table.add_row t
        [
          string_of_int f;
          Printf.sprintf "%.4f s" est.Model.total;
          Printf.sprintf "%.4f s" r.E.completion;
          Printf.sprintf "%.2f" est.Model.predicted_speedup;
          Printf.sprintf "%.2f" r.E.speedup;
        ])
    spec.E.factors;
  emit t;
  let best_f, _ = Model.best_factor mk ~factors:spec.E.factors ~net in
  let measured_best =
    List.fold_left
      (fun acc f ->
        let r = E.run_one spec ~net ~variant:"rect" ~factor:f in
        match acc with
        | Some (_, s) when s >= r.E.speedup -> acc
        | _ -> Some (f, r.E.speedup))
      None spec.E.factors
  in
  (match measured_best with
  | Some (f, _) ->
    pf "model-optimal z = %d; simulation-optimal z = %d\n" best_f f
  | None -> ())

let memory () =
  pf "\n=== Memory — LDS compression vs enclosing-rectangle allocation (§3.1) ===\n";
  pf "(the paper: allocating each processor's non-rectangular DS share as its\n";
  pf " minimum enclosing rectangle wastes memory; the condensed LDS does not)\n";
  let t =
    Table.create
      ~header:
        [ "experiment"; "variant"; "|J^n| cells"; "sum LDS cells";
          "sum enclosing rect"; "replicated DS"; "LDS overhead"; "rect overhead" ]
  in
  let module Mapping = Tiles_core.Mapping in
  let module Tile_space = Tiles_core.Tile_space in
  let module Polyhedron = Tiles_poly.Polyhedron in
  let row label spec variant factor =
    let tiling = (List.assoc variant spec.E.variants) factor in
    let plan = Plan.make ~m:spec.E.m spec.E.nest tiling in
    let mapping = plan.Plan.mapping in
    let total_points =
      Polyhedron.count_points spec.E.nest.Tiles_loop.Nest.space
    in
    let lds_cells = ref 0 and rect_cells = ref 0 in
    for rank = 0 to Mapping.nprocs mapping - 1 do
      let shape = Plan.lds_shape plan ~rank in
      lds_cells := !lds_cells + shape.Tiles_core.Lds.total;
      (* minimum enclosing rectangle of this rank's share of DS: bounding
         box over its tiles' global points (via tile hull corners) *)
      let n = Tiles_core.Tiling.dim tiling in
      let lo = Array.make n max_int and hi = Array.make n min_int in
      List.iter
        (fun tile ->
          Tile_space.iter_tile_points plan.Plan.tspace ~tile
            (fun ~local:_ ~global:j ->
              for k = 0 to n - 1 do
                if j.(k) < lo.(k) then lo.(k) <- j.(k);
                if j.(k) > hi.(k) then hi.(k) <- j.(k)
              done))
        (Mapping.tiles_of_rank mapping rank);
      if lo.(0) <> max_int then begin
        let cells = ref 1 in
        for k = 0 to n - 1 do
          cells := !cells * (hi.(k) - lo.(k) + 1)
        done;
        rect_cells := !rect_cells + !cells
      end
    done;
    let pct x =
      Printf.sprintf "%+.0f%%"
        (100. *. (float_of_int x -. float_of_int total_points)
         /. float_of_int total_points)
    in
    Table.add_row t
      [
        label; variant;
        string_of_int total_points;
        string_of_int !lds_cells;
        string_of_int !rect_cells;
        string_of_int (total_points * Mapping.nprocs mapping);
        pct !lds_cells;
        pct !rect_cells;
      ]
  in
  let sor = E.sor ~factors:[ 6 ] ~m_steps:60 ~size:120 () in
  row "SOR M=60 N=120 z=6" sor "rect" 6;
  row "SOR M=60 N=120 z=6" sor "nonrect" 6;
  let adi = E.adi ~factors:[ 10 ] ~t_steps:60 ~size:96 () in
  row "ADI T=60 N=96 x=10" adi "rect" 10;
  row "ADI T=60 N=96 x=10" adi "nr3" 10;
  emit t

let ablation_tune () =
  pf "\n=== Ablation — autotuner: predictor rank order vs simulator rank order ===\n";
  pf "(SOR M=100 N=200, 16-processor budget, the fig6 factor sweep; the\n";
  pf " tuner's shortlist re-simulated, both orderings side by side)\n";
  let module Tune = Tiles_tune.Tune in
  let module Predictor = Tiles_tune.Predictor in
  let module Cache = Tiles_tune.Cache in
  let p = Tiles_apps.Sor.make ~m_steps:100 ~size:200 in
  let nest = Tiles_apps.Sor.nest p in
  let kernel = Tiles_apps.Sor.kernel p in
  let options =
    { Tune.default_options with factors = [ 2; 3; 4; 6; 8; 10; 16; 25 ] }
  in
  let r = Tune.search ~options ~nest ~kernel ~net () in
  let by_pred =
    List.sort
      (fun (a : Tune.scored) b ->
        compare a.Tune.predicted.Predictor.total b.Tune.predicted.Predictor.total)
      r.Tune.simulated
  in
  let pred_rank s =
    let rec find i = function
      | [] -> 0
      | x :: rest -> if x.Tune.cand = s.Tune.cand then i else find (i + 1) rest
    in
    find 1 by_pred
  in
  let t =
    Table.create
      ~header:
        [ "candidate"; "predicted ms"; "pred rank"; "simulated ms"; "sim rank" ]
  in
  List.iteri
    (fun i s ->
      let sim =
        match s.Tune.score with
        | Some sc -> Printf.sprintf "%.3f" (1e3 *. sc.Cache.completion)
        | None -> "-"
      in
      Table.add_row t
        [
          Tiles_tune.Candidate.label s.Tune.cand;
          Printf.sprintf "%.3f" (1e3 *. s.Tune.predicted.Predictor.total);
          string_of_int (pred_rank s);
          sim;
          string_of_int (i + 1);
        ])
    r.Tune.simulated;
  emit t;
  (* the acceptance comparison: the tuner against fig6's best hand-picked
     tiling (same nest, net and processor budget) *)
  let hand =
    let plan = Plan.make ~m:2 nest (Tiles_apps.Sor.nonrect ~x:50 ~y:34 ~z:4) in
    Executor.run ~mode:Executor.Timing ~plan ~kernel ~net ()
  in
  let best_completion =
    match r.Tune.best.Tune.score with
    | Some sc -> sc.Cache.completion
    | None -> nan
  in
  pf "tuned best  : %s — %.3f ms\n"
    (Tiles_tune.Candidate.label r.Tune.best.Tune.cand)
    (1e3 *. best_completion);
  pf "hand-picked : nonrect z=4 (fig6) — %.3f ms\n"
    (1e3 *. hand.Executor.stats.Sim.completion);
  pf "sim-best predictor rank: %d of %d simulated\n"
    (pred_rank (List.hd r.Tune.simulated))
    (List.length r.Tune.simulated)

(* ---------------- unified trace metrics ---------------- *)

let trace_target () =
  pf "\n=== Trace — unified span metrics, simulator vs shm domains ===\n";
  pf "(SOR M=24 N=32 nonrect x=6 y=8 z=8; both backends run the same plan\n";
  pf " through the same recorder vocabulary; counters must agree exactly)\n";
  let module Stats = Tiles_obs.Stats in
  let module Shm_executor = Tiles_runtime.Shm_executor in
  let p = Tiles_apps.Sor.make ~m_steps:24 ~size:32 in
  let nest = Tiles_apps.Sor.nest p in
  let kernel = Tiles_apps.Sor.kernel p in
  let plan =
    Plan.make ~m:Tiles_apps.Sor.mapping_dim nest
      (Tiles_apps.Sor.nonrect ~x:6 ~y:8 ~z:8)
  in
  let sim =
    let r = Executor.run ~mode:Executor.Full ~trace:true ~plan ~kernel ~net () in
    Tiles_mpisim.Trace.aggregate r.Executor.stats
  in
  let shm = (Shm_executor.run ~trace:true ~plan ~kernel ()).Shm_executor.stats in
  let t =
    Table.create
      ~header:
        [ "backend"; "completion"; "messages"; "bytes"; "max in-flight";
          "mean busy"; "comm/compute"; "critical path" ]
  in
  let row name (s : Stats.t) =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.6f s" s.Stats.completion;
        string_of_int s.Stats.messages;
        string_of_int s.Stats.bytes;
        string_of_int s.Stats.max_inflight_bytes;
        Printf.sprintf "%.0f%%" (100. *. s.Stats.mean_busy_fraction);
        Printf.sprintf "%.2f" s.Stats.comm_compute_ratio;
        Printf.sprintf "%.6f s" s.Stats.critical_path;
      ]
  in
  row "sim (virtual)" sim;
  row "shm (wall)" shm;
  emit t;
  emit_json "sim" (Stats.to_json sim);
  emit_json "shm" (Stats.to_json shm);
  if sim.Stats.messages <> shm.Stats.messages
     || sim.Stats.bytes <> shm.Stats.bytes then
    pf "WARNING: backend counters disagree\n"

(* ---------------- causal critical-path analysis ---------------- *)

let analyze_target () =
  pf "\n=== Analyze — causal critical path, rect vs nonrect, small vs large ===\n";
  pf "(Jacobi on the simulator in Timing mode; the causal path replays the\n";
  pf " send→recv edge DAG, so its compute/wait/flight split says where the\n";
  pf " makespan actually goes — rank counts span 58 to 4483)\n";
  let module Stats = Tiles_obs.Stats in
  let module Recorder = Tiles_obs.Recorder in
  let module Critpath = Tiles_obs.Critpath in
  let configs =
    [
      ("rect", 24, 34, (6, 8, 8)); ("nonrect", 24, 34, (6, 8, 8));
      ("rect", 24, 256, (3, 8, 8)); ("nonrect", 24, 256, (3, 8, 8));
      ("rect", 24, 512, (3, 8, 8)); ("nonrect", 24, 512, (3, 8, 8));
    ]
  in
  let run ~net (variant, t_steps, size, (x, y, z)) =
    let p = Tiles_apps.Jacobi.make ~t_steps ~size in
    let plan =
      Plan.make ~m:Tiles_apps.Jacobi.mapping_dim (Tiles_apps.Jacobi.nest p)
        ((List.assoc variant Tiles_apps.Jacobi.variants) ~x ~y ~z)
    in
    let r =
      Executor.run ~mode:Executor.Timing ~trace:true ~plan
        ~kernel:(Tiles_apps.Jacobi.kernel p) ~net ()
    in
    let stats = r.Executor.stats in
    let nprocs = Array.length stats.Sim.rank_clocks in
    ( nprocs,
      Critpath.analyze ~completion:stats.Sim.completion ~nprocs
        ~edges:stats.Sim.edges stats.Sim.trace )
  in
  let pct report k =
    let s =
      match List.assoc_opt k report.Critpath.kind_seconds with
      | Some s -> s
      | None -> 0.
    in
    Printf.sprintf "%.1f%%" (100. *. s /. report.Critpath.completion)
  in
  let t =
    Table.create
      ~header:
        [ "config"; "procs"; "completion"; "path compute"; "path wait";
          "path flight"; "edges"; "coverage"; "imbalance" ]
  in
  List.iter
    (fun ((variant, t_steps, size, _tile) as cfg) ->
      let nprocs, report = run ~net cfg in
      let label = Printf.sprintf "T=%d N=%d %s" t_steps size variant in
      Table.add_row t
        [
          label;
          string_of_int nprocs;
          Printf.sprintf "%.6f s" report.Critpath.completion;
          pct report "compute";
          pct report "wait";
          pct report "flight";
          string_of_int report.Critpath.edges_crossed;
          Printf.sprintf "%.1f%%" (100. *. report.Critpath.coverage);
          Printf.sprintf "%.3f" report.Critpath.imbalance;
        ];
      emit_json label (Critpath.to_json ~segments:false ~per_rank:false report))
    configs;
  emit t;
  pf "\n--- same sweep under the contended NIC model (1 send / 1 recv lane) ---\n";
  pf "(\"path queue\" is the share of the causal path spent serialized behind\n";
  pf " a busy NIC lane; the nonrect advantage has to survive contention)\n";
  let cnet = Netmodel.contended net in
  let tc =
    Table.create
      ~header:
        [ "config"; "procs"; "completion"; "path compute"; "path wait";
          "path flight"; "path queue"; "coverage" ]
  in
  List.iter
    (fun ((variant, t_steps, size, _tile) as cfg) ->
      let nprocs, report = run ~net:cnet cfg in
      let label = Printf.sprintf "T=%d N=%d %s contended" t_steps size variant in
      Table.add_row tc
        [
          label;
          string_of_int nprocs;
          Printf.sprintf "%.6f s" report.Critpath.completion;
          pct report "compute";
          pct report "wait";
          pct report "flight";
          pct report "nic-queue";
          Printf.sprintf "%.1f%%" (100. *. report.Critpath.coverage);
        ];
      emit_json label (Critpath.to_json ~segments:false ~per_rank:false report))
    configs;
  emit tc

(* ---------------- perf observatory ---------------- *)

let perf_target () =
  pf "\n=== Perf — repeated-run distributions and analytic-model residuals ===\n";
  pf "(each config runs 1 warmup + 3 measured sim repeats; the residual\n";
  pf " table compares the tuner's two predictor passes and the\n";
  pf " Hodzic-Shang model against the observed completion)\n";
  let module Stats = Tiles_obs.Stats in
  let module Metric = Tiles_obs.Metric in
  let module Residual = Tiles_obs.Residual in
  let module Baseline = Tiles_obs.Baseline in
  let module Runmeta = Tiles_obs.Runmeta in
  let module Predictor = Tiles_tune.Predictor in
  let module Model = Tiles_runtime.Model in
  let repeats = 3 and warmup = 1 in
  let suite =
    [
      ("sor", "rect", 24, 32, (6, 8, 8));
      ("sor", "nonrect", 24, 32, (6, 8, 8));
      ("jacobi", "rect", 12, 16, (3, 4, 4));
      ("jacobi", "nonrect", 12, 16, (3, 4, 4));
      ("adi", "rect", 12, 16, (3, 4, 4));
      ("adi", "nr3", 12, 16, (3, 4, 4));
    ]
  in
  let dist_table =
    Table.create
      ~header:
        [ "config"; "procs"; "mean ms"; "stddev ms"; "p50 ms"; "p99 ms";
          "messages"; "bytes" ]
  in
  let residual_entries = ref [] in
  let records = ref [] in
  List.iter
    (fun (app, variant, size1, size2, ((x, y, z) as tile)) ->
      let nest, kernel, tiling, m =
        match app with
        | "sor" ->
          let p = Tiles_apps.Sor.make ~m_steps:size1 ~size:size2 in
          ( Tiles_apps.Sor.nest p, Tiles_apps.Sor.kernel p,
            (List.assoc variant Tiles_apps.Sor.variants) ~x ~y ~z,
            Tiles_apps.Sor.mapping_dim )
        | "jacobi" ->
          let p = Tiles_apps.Jacobi.make ~t_steps:size1 ~size:size2 in
          ( Tiles_apps.Jacobi.nest p, Tiles_apps.Jacobi.kernel p,
            (List.assoc variant Tiles_apps.Jacobi.variants) ~x ~y ~z,
            Tiles_apps.Jacobi.mapping_dim )
        | _ ->
          let p = Tiles_apps.Adi.make ~t_steps:size1 ~size:size2 in
          ( Tiles_apps.Adi.nest p, Tiles_apps.Adi.kernel p,
            (List.assoc variant Tiles_apps.Adi.variants) ~x ~y ~z,
            Tiles_apps.Adi.mapping_dim )
      in
      let plan = Plan.make ~m nest tiling in
      let label = Printf.sprintf "%s/%s x=%d y=%d z=%d" app variant x y z in
      let last_speedup = ref nan in
      let run_once () =
        let r =
          Executor.run ~mode:Executor.Timing ~trace:true ~plan ~kernel ~net ()
        in
        last_speedup := r.Executor.speedup;
        Tiles_mpisim.Trace.aggregate r.Executor.stats
      in
      let runs = List.init (warmup + repeats) (fun _ -> run_once ()) in
      let stats = List.nth runs (List.length runs - 1) in
      let dist = Stats.distributions ~warmup runs in
      let c = List.assoc "completion_s" dist in
      Table.add_row dist_table
        [
          label;
          string_of_int (Plan.nprocs plan);
          Printf.sprintf "%.3f" (1e3 *. c.Metric.mean);
          Printf.sprintf "%.3f" (1e3 *. c.Metric.stddev);
          Printf.sprintf "%.3f" (1e3 *. c.Metric.p50);
          Printf.sprintf "%.3f" (1e3 *. c.Metric.p99);
          string_of_int stats.Stats.messages;
          string_of_int stats.Stats.bytes;
        ];
      let observed =
        [
          ("completion_s", stats.Stats.completion);
          ("speedup", !last_speedup);
        ]
      in
      let width = kernel.Tiles_runtime.Kernel.width in
      let entries source fields =
        List.filter_map
          (fun (field, predicted) ->
            Option.map
              (fun observed ->
                { Residual.label; source; field; predicted; observed })
              (List.assoc_opt field observed))
          fields
      in
      let p = Predictor.predict ~width plan ~net in
      let r = Predictor.refine ~width plan ~net in
      let mo = Model.predict plan ~net in
      residual_entries :=
        !residual_entries
        @ entries (Predictor.source p) (Predictor.fields p)
        @ entries (Predictor.source r) (Predictor.fields r)
        @ entries "model" (Model.fields mo);
      let meta =
        Runmeta.make ~app ~variant ~size1 ~size2 ~tile
          ~nprocs:(Plan.nprocs plan) ~backend:"sim"
          ~netmodel:"fast_ethernet_cluster" ()
      in
      records :=
        (label,
         Json.Obj
           [
             ("metadata", Runmeta.to_json meta);
             ("baseline",
              Baseline.to_json (Baseline.make ~meta ~stats ~timings:dist));
           ])
        :: !records)
    suite;
  emit dist_table;
  let entries = !residual_entries in
  let residual_table =
    Table.create
      ~header:[ "config"; "source"; "field"; "predicted"; "observed"; "err" ]
  in
  List.iter
    (fun (e : Residual.entry) ->
      Table.add_row residual_table
        [
          e.Residual.label;
          e.Residual.source;
          e.Residual.field;
          Printf.sprintf "%.6g" e.Residual.predicted;
          Printf.sprintf "%.6g" e.Residual.observed;
          Printf.sprintf "%+.1f%%" (100. *. Residual.rel_error e);
        ])
    entries;
  emit residual_table;
  let calibration_table =
    Table.create
      ~header:[ "source"; "n"; "mean |err|"; "bias"; "max |err|" ]
  in
  List.iter
    (fun (c : Residual.calibration) ->
      Table.add_row calibration_table
        [
          c.Residual.source;
          string_of_int c.Residual.count;
          Printf.sprintf "%.1f%%" (100. *. c.Residual.mean_abs_rel);
          Printf.sprintf "%+.1f%%" (100. *. c.Residual.mean_rel);
          Printf.sprintf "%.1f%%" (100. *. c.Residual.max_abs_rel);
        ])
    (Residual.calibrate entries);
  emit calibration_table;
  List.iter (fun (k, j) -> emit_json k j) (List.rev !records);
  emit_json "residuals" (Residual.to_json entries)

(* ---------------- Bechamel micro-benchmarks ---------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  pf "\n=== Micro-benchmarks (Bechamel, monotonic clock) ===\n";
  let mat =
    Tiles_linalg.Intmat.of_rows [ [ 2; -1; 0 ]; [ 0; 1; 0 ]; [ -1; 0; 3 ] ]
  in
  let tiling =
    Tiling.of_rows
      Tiles_rat.Rat.
        [
          [ make 1 6; make (-1) 12; of_int 0 ];
          [ of_int 0; make 1 8; of_int 0 ];
          [ of_int 0; of_int 0; make 1 10 ];
        ]
  in
  let space = Tiles_poly.Polyhedron.box [ (0, 19); (0, 19); (0, 19) ] in
  let cs = Tiles_poly.Polyhedron.constraints space in
  let deps =
    Tiles_loop.Dependence.of_vectors [ [| 1; 0; 0 |]; [| 1; 1; 0 |]; [| 1; 0; 1 |] ]
  in
  let pascal =
    Tiles_runtime.Kernel.make ~name:"pascal" ~dim:2
      ~reads:[ [| 1; 0 |]; [| 0; 1 |] ]
      ~boundary:(fun _ _ -> 1.)
      ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0 +. read 1 0)
      ()
  in
  let pascal_plan =
    Plan.make
      (Tiles_loop.Nest.make ~name:"pascal"
         ~space:(Tiles_poly.Polyhedron.box [ (0, 29); (0, 29) ])
         ~deps:(Tiles_runtime.Kernel.deps pascal))
      (Tiling.rectangular [ 5; 5 ])
  in
  let tests =
    [
      Test.make ~name:"hnf-3x3" (Staged.stage (fun () ->
           ignore (Tiles_linalg.Hnf.compute mat)));
      Test.make ~name:"snf-3x3" (Staged.stage (fun () ->
           ignore (Tiles_linalg.Snf.compute mat)));
      Test.make ~name:"fm-eliminate" (Staged.stage (fun () ->
           ignore (Tiles_poly.Fourier_motzkin.eliminate cs ~var:2)));
      Test.make ~name:"ttis-enumerate-480pt" (Staged.stage (fun () ->
           ignore (Tiles_core.Ttis.count tiling)));
      Test.make ~name:"tile-deps" (Staged.stage (fun () ->
           ignore (Tiles_core.Comm.make tiling deps ~m:0)));
      Test.make ~name:"cone-extreme-rays" (Staged.stage (fun () ->
           ignore
             (Tiles_poly.Cone.extreme_rays
                (Tiles_poly.Cone.tiling_cone
                   (Tiles_loop.Dependence.to_matrix deps)))));
      Test.make ~name:"executor-pascal-900pt" (Staged.stage (fun () ->
           ignore
             (Executor.run ~mode:Executor.Timing ~plan:pascal_plan
                ~kernel:pascal ~net ())));
    ]
  in
  let grouped = Test.make_grouped ~name:"tiles" ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  let t = Table.create ~header:[ "benchmark"; "time/run" ] in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let time =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%.0f ns" est
        | _ -> "?"
      in
      Table.add_row t [ name; time ])
    (List.sort compare rows);
  emit t

(* ---------------- walker throughput (kernels) ---------------- *)

(* Wall-clock throughput of the four tile walkers on the real apps. The
   sim backend in Full mode executes every rank's compute/pack/unpack
   work on one thread with zero transport cost, so elapsed wall time
   isolates walker cost from scheduling and parallel speedup:
   points/s counts computed iteration points, bytes/s counts packed slab
   payload, both against the same elapsed wall clock. When the native
   walker cannot compile (no C compiler on the box) its row fell back to
   the fast path; the JSON records the reason so the numbers are never
   silently mislabelled.

   Each configuration also sweeps the walker's inner subtile shapes
   ([--inner] on the CLI): the fast variants re-walk the same tile as a
   sequence of cache-resident subtiles, bit-identical to the unblocked
   walk, and the table reports the best blocked shape next to the
   unblocked row ("x unbl" is the intra-tile blocking ratio). The small
   configurations are cache-resident and exist as correctness smoke; the
   wide-tile configuration is the one whose per-rank working set
   actually exceeds L2, where blocking can pay on machines whose
   last-level cache does not already swallow the whole tile. *)
let kernels_target () =
  let module Walker = Tiles_runtime.Walker in
  let module Metric = Tiles_obs.Metric in
  pf
    "\n\
     === Kernels — walker throughput (reference vs strength vs fast vs \
     native) ===\n";
  pf "(each cell is 1 warmup + N measured Full-mode runs on the sim backend;\n";
  pf " 'inner' rows re-run the same walk blocked into cache-resident subtiles)\n";
  let warmup = 1 in
  (* (app, variant, size1, size2, outer tile, repeats, inner sweep) *)
  let suite =
    [
      ("sor", "nonrect", 32, 64, (8, 16, 16), 4, [ [| 4; 8; 16 |] ]);
      ("jacobi", "nonrect", 16, 48, (4, 12, 12), 4, [ [| 4; 6; 12 |] ]);
      ("adi", "nr3", 16, 40, (4, 10, 10), 4, [ [| 4; 5; 10 |] ]);
      (* wide tile: 8x512x512 doubles = 16.8 MB per rank tile, far past
         L2 — the configuration the two-level story is about *)
      ( "sor", "nonrect", 8, 512, (8, 512, 512), 2,
        [ [| 8; 16; 512 |]; [| 8; 32; 512 |]; [| 8; 64; 64 |] ] );
    ]
  in
  let t =
    Table.create
      ~header:
        [
          "config"; "procs"; "walker"; "inner"; "Mpoint/s"; "stddev"; "MB/s";
          "x ref"; "x unbl";
        ]
  in
  let records = ref [] in
  List.iter
    (fun (app, variant, size1, size2, (x, y, z), repeats, sweep) ->
      let nest, kernel, tiling, m =
        match app with
        | "sor" ->
          let p = Tiles_apps.Sor.make ~m_steps:size1 ~size:size2 in
          ( Tiles_apps.Sor.nest p, Tiles_apps.Sor.kernel p,
            (List.assoc variant Tiles_apps.Sor.variants) ~x ~y ~z,
            Tiles_apps.Sor.mapping_dim )
        | "jacobi" ->
          let p = Tiles_apps.Jacobi.make ~t_steps:size1 ~size:size2 in
          ( Tiles_apps.Jacobi.nest p, Tiles_apps.Jacobi.kernel p,
            (List.assoc variant Tiles_apps.Jacobi.variants) ~x ~y ~z,
            Tiles_apps.Jacobi.mapping_dim )
        | _ ->
          let p = Tiles_apps.Adi.make ~t_steps:size1 ~size:size2 in
          ( Tiles_apps.Adi.nest p, Tiles_apps.Adi.kernel p,
            (List.assoc variant Tiles_apps.Adi.variants) ~x ~y ~z,
            Tiles_apps.Adi.mapping_dim )
      in
      let plan = Plan.make ~m nest tiling in
      let label =
        Printf.sprintf "%s/%s %d/%d x=%d y=%d z=%d" app variant size1 size2 x
          y z
      in
      let native_fallback =
        match Tiles_runtime.Native_kernel.build ~plan ~kernel () with
        | Ok _ -> None
        | Error reason -> Some reason
      in
      (match native_fallback with
      | Some reason ->
        pf "note: %s: native walker fell back to fast (%s)\n" label reason
      | None -> ());
      let run_once ?inner walker =
        let t0 = Unix.gettimeofday () in
        let r =
          Executor.run ?inner ~walker ~mode:Executor.Full ~plan ~kernel ~net
            ()
        in
        let dt = Unix.gettimeofday () -. t0 in
        ( float_of_int r.Executor.points_computed /. dt,
          float_of_int r.Executor.stats.Sim.bytes /. dt )
      in
      (* one walker's unblocked walk and its blocked sweep are sampled
         round-robin (unblocked, shape 1, shape 2, ..., repeat) so slow
         clock drift on a shared box lands evenly on every configuration
         instead of manufacturing a blocking "speedup" — the ratio
         column compares samples taken seconds, not minutes, apart *)
      let measure walker shapes =
        let configs = None :: List.map Option.some shapes in
        let samples =
          List.init (warmup + repeats) (fun round ->
              List.map
                (fun inner -> (round, inner, run_once ?inner walker))
                configs)
        in
        let measured =
          List.concat_map
            (List.filter (fun (round, _, _) -> round >= warmup))
            samples
        in
        List.map
          (fun inner ->
            let mine =
              List.filter_map
                (fun (_, i, s) -> if i = inner then Some s else None)
                measured
            in
            ( inner,
              ( Metric.of_values (List.map fst mine),
                Metric.of_values (List.map snd mine) ) ))
          configs
      in
      let results =
        List.map
          (fun w ->
            let shapes = if w = Walker.Reference then [] else sweep in
            (w, measure w shapes))
          Walker.all_variants
      in
      let ref_pps =
        (fst (List.assoc None (List.assoc Walker.Reference results)))
          .Metric.mean
      in
      let shape_str b =
        String.concat "x" (List.map string_of_int (Array.to_list b))
      in
      let row ~inner ~unbl_pps (w, ((pps : Metric.summary), bps)) =
        Table.add_row t
          [
            label;
            string_of_int (Plan.nprocs plan);
            Walker.variant_to_string w;
            inner;
            Printf.sprintf "%.2f" (pps.Metric.mean /. 1e6);
            Printf.sprintf "%.2f" (pps.Metric.stddev /. 1e6);
            Printf.sprintf "%.1f" (bps.Metric.mean /. 1e6);
            Printf.sprintf "%.2fx" (pps.Metric.mean /. ref_pps);
            Printf.sprintf "%.2fx" (pps.Metric.mean /. unbl_pps);
          ]
      in
      let walker_json =
        List.map
          (fun (w, by_inner) ->
            let ((pps : Metric.summary), bps) = List.assoc None by_inner in
            let blocked =
              List.filter_map
                (fun (inner, m) ->
                  match inner with Some b -> Some (b, m) | None -> None)
                by_inner
            in
            let unbl_pps = pps.Metric.mean in
            row ~inner:"-" ~unbl_pps (w, (pps, bps));
            let best =
              List.fold_left
                (fun acc (b, (bp, bb)) ->
                  match acc with
                  | Some (_, (ap, _)) when ap.Metric.mean >= bp.Metric.mean ->
                    acc
                  | _ -> Some (b, (bp, bb)))
                None blocked
            in
            (match best with
            | Some (b, m) -> row ~inner:(shape_str b) ~unbl_pps (w, m)
            | None -> ());
            let sweep_json =
              List.map
                (fun (b, ((bp : Metric.summary), bb)) ->
                  Json.Obj
                    [
                      ( "shape",
                        Json.List
                          (List.map (fun v -> Json.Int v) (Array.to_list b))
                      );
                      ("points_per_s", Metric.summary_to_json bp);
                      ("packed_bytes_per_s", Metric.summary_to_json bb);
                      ( "speedup_vs_unblocked",
                        Json.Float (bp.Metric.mean /. unbl_pps) );
                    ])
                blocked
            in
            ( Walker.variant_to_string w,
              Json.Obj
                ([
                   ("points_per_s", Metric.summary_to_json pps);
                   ("packed_bytes_per_s", Metric.summary_to_json bps);
                   ( "speedup_vs_reference",
                     Json.Float (pps.Metric.mean /. ref_pps) );
                 ]
                @ (if blocked = [] then []
                   else
                     [
                       ("inner_sweep", Json.List sweep_json);
                       ( "best_inner",
                         match best with
                         | Some (b, _) ->
                           Json.List
                             (List.map
                                (fun v -> Json.Int v)
                                (Array.to_list b))
                         | None -> Json.Null );
                       ( "intra_tile_blocking_ratio",
                         Json.Float
                           (match best with
                           | Some (_, (bp, _)) -> bp.Metric.mean /. unbl_pps
                           | None -> 1.0) );
                     ])
                @
                match (w, native_fallback) with
                | Walker.Native, Some reason ->
                  [ ("fallback", Json.Str reason) ]
                | _ -> []) ))
          results
      in
      records := (label, Json.Obj walker_json) :: !records)
    suite;
  emit t;
  List.iter (fun (k, j) -> emit_json k j) (List.rev !records)

(* ---------------- serve load generator ---------------- *)

(* Drive the daemon programmatically with a mixed multi-tenant workload:
   distinct plan/simulate/tune configurations plus deliberate duplicates
   (the coalescing and plan-cache fodder). Reports end-to-end throughput
   and the server's own per-class latency percentiles, and rides the
   final metrics snapshot along in BENCH_serve.json. *)
let serve_target () =
  let module Server = Tiles_serve.Server in
  let module Job = Tiles_serve.Job in
  pf "\n=== Serve — multi-tenant compile-service load test ===\n";
  pf "(2 workers, capacity 64; every duplicate request is a coalesce or\n";
  pf " plan-cache opportunity — the hit/batch counters below are the\n";
  pf " amortization the daemon exists for)\n";
  let mk fields =
    match Job.of_json (Json.Obj fields) with
    | Ok j -> j
    | Error e -> failwith ("serve bench job: " ^ e)
  in
  let plan_job app size1 size2 =
    mk
      [
        ("op", Json.Str "plan"); ("app", Json.Str app);
        ("size1", Json.Int size1); ("size2", Json.Int size2);
        ("variant", Json.Str (if app = "adi" then "nr1" else "nonrect"));
      ]
  in
  let sim_job app size1 size2 =
    mk
      [
        ("op", Json.Str "simulate"); ("app", Json.Str app);
        ("size1", Json.Int size1); ("size2", Json.Int size2);
        ("variant", Json.Str (if app = "adi" then "nr3" else "nonrect"));
      ]
  in
  let tune_job app =
    mk
      [
        ("op", Json.Str "tune"); ("app", Json.Str app);
        ("size1", Json.Int 10); ("size2", Json.Int 12);
        ("variant", Json.Str (if app = "adi" then "nr1" else "nonrect"));
        ("procs", Json.Int 4);
        ("factors", Json.List [ Json.Int 2; Json.Int 3 ]);
      ]
  in
  (* 12 distinct plans x3 copies, 6 distinct sims x2, 2 tunes x2:
     52 requests over 20 unique configurations *)
  let distinct_plans =
    List.concat_map
      (fun (s1, s2) ->
        [ plan_job "sor" s1 s2; plan_job "jacobi" s1 s2;
          plan_job "adi" s1 s2 ])
      [ (24, 32); (24, 48); (48, 32); (48, 64) ]
  in
  let distinct_sims =
    List.concat_map
      (fun (s1, s2) ->
        [ sim_job "sor" s1 s2; sim_job "jacobi" s1 s2; sim_job "adi" s1 s2 ])
      [ (16, 24); (24, 32) ]
  in
  let tunes = [ tune_job "sor"; tune_job "adi" ] in
  let workload =
    List.concat
      [
        distinct_plans; distinct_plans; distinct_plans;
        distinct_sims; distinct_sims;
        tunes; tunes;
      ]
  in
  let config =
    { Server.default_config with Server.capacity = 64; workers = 2 }
  in
  let t0 = Unix.gettimeofday () in
  let server = Server.create ~config () in
  let lock = Mutex.create () in
  let ok = ref 0 and failed = ref 0 in
  let respond j =
    Mutex.lock lock;
    (match Json.member "status" j with
    | Some (Json.Str "ok") -> incr ok
    | _ -> incr failed);
    Mutex.unlock lock
  in
  List.iter (fun job -> Server.submit server ~respond job) workload;
  Server.drain server;
  let elapsed = Unix.gettimeofday () -. t0 in
  let snapshot = Server.metrics_json server in
  Server.shutdown server;
  let n = List.length workload in
  let t = Table.create ~header:[ "requests"; "unique"; "ok"; "failed";
                                 "elapsed s"; "req/s" ] in
  Table.add_row t
    [
      string_of_int n;
      string_of_int
        (List.length distinct_plans + List.length distinct_sims
        + List.length tunes);
      string_of_int !ok;
      string_of_int !failed;
      Printf.sprintf "%.3f" elapsed;
      Printf.sprintf "%.0f" (float_of_int n /. elapsed);
    ];
  emit t;
  (* per-class latency straight from the daemon's own metrics *)
  let get path j =
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j)
      path
  in
  let num path j =
    match get path j with
    | Some v -> Option.value ~default:nan (Json.to_float_opt v)
    | None -> nan
  in
  let lat =
    Table.create
      ~header:
        [ "class"; "count"; "queued p50 ms"; "service p50 ms";
          "total p50 ms"; "total p99 ms" ]
  in
  (match get [ "jobs"; "classes" ] snapshot with
  | Some (Json.Obj classes) ->
    List.iter
      (fun (cls, cj) ->
        Table.add_row lat
          [
            cls;
            Printf.sprintf "%.0f" (num [ "count" ] cj);
            Printf.sprintf "%.3f" (1e3 *. num [ "queued_s"; "p50" ] cj);
            Printf.sprintf "%.3f" (1e3 *. num [ "service_s"; "p50" ] cj);
            Printf.sprintf "%.3f" (1e3 *. num [ "total_s"; "p50" ] cj);
            Printf.sprintf "%.3f" (1e3 *. num [ "total_s"; "p99" ] cj);
          ])
      classes
  | _ -> pf "WARNING: no per-class latency in the snapshot\n");
  emit lat;
  let amort = Table.create ~header:[ "counter"; "value" ] in
  List.iter
    (fun (label, path) ->
      Table.add_row amort
        [ label; Printf.sprintf "%.0f" (num path snapshot) ])
    [
      ("admitted", [ "queue"; "accepted" ]);
      ("admission rejects", [ "queue"; "rejected_full" ]);
      ("queue high water", [ "queue"; "high_water" ]);
      ("coalesced (batched)", [ "coalesce"; "batched" ]);
      ("plan-cache hits", [ "plan_cache"; "hits" ]);
      ("plan-cache misses", [ "plan_cache"; "misses" ]);
      ("plan compiles", [ "plan_cache"; "compiles" ]);
    ];
  emit amort;
  if !failed > 0 then pf "WARNING: %d requests failed\n" !failed;
  emit_json "throughput"
    (Json.Obj
       [
         ("requests", Json.Int n);
         ("ok", Json.Int !ok);
         ("failed", Json.Int !failed);
         ("elapsed_s", Json.Float elapsed);
         ("requests_per_s", Json.Float (float_of_int n /. elapsed));
       ]);
  emit_json "metrics" snapshot

(* ---------------- driver ---------------- *)

let figures =
  [
    ("fig5", fig5); ("fig6", fig6); ("fig7", fig7); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("summary", summary);
    ("analytic", analytic); ("ablation-net", ablation_net);
    ("ablation-map", ablation_map); ("ablation-overlap", ablation_overlap);
    ("ablation-tune", ablation_tune);
    ("memory", memory); ("model", model); ("trace", trace_target);
    ("analyze", analyze_target);
    ("perf", perf_target); ("micro", micro); ("kernels", kernels_target);
    ("serve", serve_target);
  ]

let default = [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "summary"; "analytic" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let args = List.filter (fun a -> a <> "--json") args in
  let targets =
    match args with
    | [] -> default
    | [ "everything" ] -> List.map fst figures
    | args -> args
  in
  pf "Reproduction harness — \"Compiling Tiled Iteration Spaces for Clusters\"\n";
  pf "simulated cluster: 16 nodes, %.0f Mbit/s, %.0f us latency, %.0f ns/point\n"
    (net.Netmodel.bandwidth *. 8. /. 1e6)
    (net.Netmodel.latency *. 1e6)
    (net.Netmodel.flop_time *. 1e9);
  List.iter
    (fun name ->
      match List.assoc_opt name figures with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        collected := [];
        collected_json := [];
        f ();
        pf "[%s done in %.1fs]\n" name (Unix.gettimeofday () -. t0);
        if json then write_json ~target:name
      | None ->
        pf "unknown target %s (available: %s)\n" name
          (String.concat ", " (List.map fst figures));
        exit 1)
    targets
