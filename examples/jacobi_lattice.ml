(* Jacobi is the paper's showcase for genuinely non-unimodular tiling: the
   transformation H' = V·H is not unimodular (det 2), so the TTIS is a
   strict sublattice — loop strides and the incremental offsets of Fig. 2
   appear. This example prints that machinery and then runs the plan.

   Run with:  dune exec examples/jacobi_lattice.exe *)

module Jacobi = Tiles_apps.Jacobi
module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Ttis = Tiles_core.Ttis
module Plan = Tiles_core.Plan
module Executor = Tiles_runtime.Executor
module Seq_exec = Tiles_runtime.Seq_exec
module Grid = Tiles_runtime.Grid
module Intmat = Tiles_linalg.Intmat
module Vec = Tiles_util.Vec

let () =
  let p = Jacobi.make ~t_steps:24 ~size:64 in
  let nest = Jacobi.nest p in
  let kernel = Jacobi.kernel p in
  let tiling = Jacobi.nonrect ~x:6 ~y:22 ~z:22 in
  Printf.printf "Jacobi non-rectangular tiling (x=6, y=22, z=22):\n\n";
  Printf.printf "H  =\n%s\n\n" (Tiles_linalg.Ratmat.to_string tiling.Tiling.h);
  Printf.printf "V  = diag%s   (v_1 = 2x because of the -1/2x entry)\n"
    (Vec.to_string tiling.Tiling.v);
  Printf.printf "H' = V.H =\n%s\n\n" (Intmat.to_string tiling.Tiling.h');
  Printf.printf "HNF(H') =\n%s\n\n" (Intmat.to_string tiling.Tiling.hnf);
  Printf.printf "strides c = %s, incremental offset a21 = %d\n"
    (Vec.to_string tiling.Tiling.c)
    tiling.Tiling.hnf.(1).(0);
  Printf.printf
    "so TTIS loop j'_2 steps by 2, and its start alternates 0/1 as j'_1 \
     advances:\n";
  for j1 = 0 to 3 do
    Printf.printf "  j'_1 = %d -> j'_2 starts at %d\n" j1
      (Ttis.start_offset tiling 1 [| j1 |])
  done;
  Printf.printf "\nTTIS has %d lattice points = tile size %d (box %s)\n"
    (Ttis.count tiling) (Tiling.tile_size tiling)
    (Vec.to_string tiling.Tiling.v);

  let plan = Plan.make ~m:Jacobi.mapping_dim nest tiling in
  print_newline ();
  print_string (Plan.summary plan);
  let net = Tiles_mpisim.Netmodel.fast_ethernet_cluster in
  let r = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
  let seq = Seq_exec.run ~space:nest.Nest.space ~kernel () in
  let err =
    match r.Executor.grid with
    | Some g -> Grid.max_abs_diff g seq nest.Nest.space
    | None -> infinity
  in
  Printf.printf "\nexecuted %d points on %d procs, speedup %.2f, max err %g\n"
    r.Executor.points_computed (Plan.nprocs plan) r.Executor.speedup err
