(* The paper's §4.1 experiment at laptop scale, with the full arithmetic:
   skew SOR, tile it rectangularly and non-rectangularly with identical
   factors, run both plans on the simulated cluster (Full mode: real
   floating-point stencil computation flowing through real messages),
   verify both against sequential execution, and compare the schedules.

   Run with:  dune exec examples/sor_pipeline.exe *)

module Sor = Tiles_apps.Sor
module Nest = Tiles_loop.Nest
module Plan = Tiles_core.Plan
module Schedule = Tiles_core.Schedule
module Executor = Tiles_runtime.Executor
module Seq_exec = Tiles_runtime.Seq_exec
module Grid = Tiles_runtime.Grid
module Sim = Tiles_mpisim.Sim
module Table = Tiles_util.Table

let () =
  let m_steps = 24 and size = 48 in
  let p = Sor.make ~m_steps ~size in
  let nest = Sor.nest p in
  let kernel = Sor.kernel p in
  Printf.printf "SOR, M=%d N=%d; skewed with T = [[1,0,0],[1,1,0],[2,0,1]]\n"
    m_steps size;
  Printf.printf "skewed dependence columns: %s\n\n"
    (Format.asprintf "%a" Tiles_loop.Dependence.pp nest.Nest.deps);
  let net = Tiles_mpisim.Netmodel.fast_ethernet_cluster in
  let seq = Seq_exec.run ~space:nest.Nest.space ~kernel () in
  let x = 12 and y = 18 and z = 8 in
  let t = Table.create
      ~header:[ "tiling"; "procs"; "steps"; "t(jmax)"; "messages"; "sim time";
                "speedup"; "max err vs seq" ]
  in
  List.iter
    (fun (name, mk) ->
      let tiling = mk ~x ~y ~z in
      let plan = Plan.make ~m:Sor.mapping_dim nest tiling in
      let r = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
      let err =
        match r.Executor.grid with
        | Some g -> Grid.max_abs_diff g seq nest.Nest.space
        | None -> infinity
      in
      Table.add_row t
        [
          name;
          string_of_int (Plan.nprocs plan);
          string_of_int (Schedule.steps plan);
          string_of_int (Schedule.last_point_step plan);
          string_of_int r.Executor.stats.Sim.messages;
          Printf.sprintf "%.4f s" r.Executor.stats.Sim.completion;
          Printf.sprintf "%.2f" r.Executor.speedup;
          Printf.sprintf "%g" err;
        ])
    Sor.variants;
  Table.print t;
  Printf.printf
    "\nBoth tilings have tile size x*y*z = %d and identical processor grids;\n\
     the non-rectangular one finishes earlier purely through its schedule\n\
     (t_r - t_nr = M/z = %d wavefront steps), confirming §4.1.\n"
    (x * y * z) (m_steps / z);
  (* the same plan also runs for real on OCaml domains (one per processor)
     with blocking mailboxes instead of the simulator *)
  let plan = Plan.make ~m:Sor.mapping_dim nest (Sor.nonrect ~x ~y ~z) in
  let shm = Tiles_runtime.Shm_executor.run ~plan ~kernel () in
  Printf.printf
    "\nreal shared-memory run: %d domains, %d messages, max err %g\n"
    shm.Tiles_runtime.Shm_executor.nprocs
    shm.Tiles_runtime.Shm_executor.messages
    shm.Tiles_runtime.Shm_executor.max_abs_err
