(* Quickstart: tile a 2-D recurrence, inspect every compile-time object the
   framework derives (the geometry of the paper's Figures 1-3), execute the
   plan on the simulated cluster and check it against sequential execution.

   Run with:  dune exec examples/quickstart.exe *)

module Polyhedron = Tiles_poly.Polyhedron
module Nest = Tiles_loop.Nest
module Tiling = Tiles_core.Tiling
module Ttis = Tiles_core.Ttis
module Plan = Tiles_core.Plan
module Lds = Tiles_core.Lds
module Kernel = Tiles_runtime.Kernel
module Executor = Tiles_runtime.Executor
module Seq_exec = Tiles_runtime.Seq_exec
module Grid = Tiles_runtime.Grid
module Sim = Tiles_mpisim.Sim
module Rat = Tiles_rat.Rat

let () =
  print_endline "== 1. the input program ==";
  print_endline "  for i = 0..959: for j = 0..959:";
  print_endline "    u[i,j] = u[i-1,j] + u[i,j-1]";
  let kernel =
    Kernel.make ~name:"pascal" ~dim:2
      ~reads:[ [| 1; 0 |]; [| 0; 1 |] ]
      ~boundary:(fun _ _ -> 1.)
      ~compute:(fun ~read ~j:_ ~out -> out.(0) <- read 0 0 +. read 1 0)
      ()
  in
  let space = Polyhedron.box [ (0, 959); (0, 959) ] in
  let nest = Nest.make ~name:"pascal" ~space ~deps:(Kernel.deps kernel) in

  print_endline "\n== 2. a non-rectangular tiling transformation ==";
  (* H = [[1/4, 1/8], [0, 1/8]]: oblique first family of hyperplanes. *)
  let tiling =
    Tiling.of_rows [ [ Rat.make 1 120; Rat.make 1 240 ]; [ Rat.zero; Rat.make 1 240 ] ]
  in
  Format.printf "%a@." Tiling.pp tiling;

  print_endline "== 3. the TTIS lattice (dots = lattice points, Fig. 1/2) ==";
  (* render a 12x12 corner of the (large) TTIS box *)
  let cells = Array.make_matrix 12 12 ' ' in
  Ttis.iter tiling (fun j' ->
      if j'.(0) < 12 && j'.(1) < 12 then cells.(j'.(0)).(j'.(1)) <- 'o');
  Array.iter
    (fun row ->
      print_string "  ";
      Array.iter (fun c -> Printf.printf "%c " (if c = ' ' then '.' else c)) row;
      print_newline ())
    cells;
  Printf.printf "  strides c = %s; %d lattice points = tile size %d\n"
    (Tiles_util.Vec.to_string tiling.Tiling.c)
    (Ttis.count tiling) (Tiling.tile_size tiling);

  print_endline "\n== 4. the parallelisation plan (§3) ==";
  let plan = Plan.make nest tiling in
  print_string (Plan.summary plan);

  print_endline "== 5. the LDS of rank 0 (Fig. 3: halo + computation cells) ==";
  let shape = Plan.lds_shape plan ~rank:0 in
  Printf.printf "  dims = %s, %d cells (halo offsets %s)\n"
    (Tiles_util.Vec.to_string shape.Lds.dims)
    shape.Lds.total
    (Tiles_util.Vec.to_string plan.Plan.comm.Tiles_core.Comm.off);

  print_endline "\n== 6. execute on the simulated cluster and verify ==";
  let net = Tiles_mpisim.Netmodel.fast_ethernet_cluster in
  let r = Executor.run ~mode:Executor.Full ~plan ~kernel ~net () in
  let seq = Seq_exec.run ~space ~kernel () in
  let diff =
    match r.Executor.grid with
    | Some g -> Grid.max_abs_diff g seq space
    | None -> infinity
  in
  Printf.printf "  procs     : %d\n" (Plan.nprocs plan);
  Printf.printf "  messages  : %d (%d bytes)\n" r.Executor.stats.Sim.messages
    r.Executor.stats.Sim.bytes;
  Printf.printf "  parallel  : %.6f s (simulated)\n"
    r.Executor.stats.Sim.completion;
  Printf.printf "  sequential: %.6f s (modelled)\n" r.Executor.seq_modelled;
  Printf.printf "  speedup   : %.2f\n" r.Executor.speedup;
  Printf.printf "  max |parallel - sequential| = %g %s\n" diff
    (if diff = 0. then "(exact)" else "")
